package core

import (
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/pagetable"
)

// AddressSpace is the application library's view of the pool on one
// server (§3.2: "an application library for allocating, controlling, and
// setting up disaggregated memory access — for example, by mapping a
// range of virtual addresses to memory in the pool"). Buffers map into a
// process-style virtual address space at page granularity; loads and
// stores translate VA → logical through a per-process MMU (with TLB), and
// logical → physical through the pool's two-step scheme.
type AddressSpace struct {
	pool   *Pool
	server addr.ServerID
	mmu    *pagetable.MMU

	mu       sync.Mutex
	nextVA   uint64
	mappings map[uint64]*Mapping // by base VA
}

// Mapping is one buffer's window in an address space.
type Mapping struct {
	VA     uint64
	Buffer *Buffer
	// Pages is the number of mapped virtual pages.
	Pages uint64

	unmapped bool
}

// vaBase leaves the null page and a guard region unmapped.
const vaBase = 1 << 20

// NewAddressSpace returns an empty address space for a process on the
// given server.
func (p *Pool) NewAddressSpace(server addr.ServerID) (*AddressSpace, error) {
	if int(server) < 0 || int(server) >= len(p.nodes) {
		return nil, fmt.Errorf("core: no server %d", server)
	}
	return &AddressSpace{
		pool:     p,
		server:   server,
		mmu:      pagetable.NewMMU(),
		nextVA:   vaBase,
		mappings: make(map[uint64]*Mapping),
	}, nil
}

// Map binds the buffer into the address space and returns its mapping.
// Each virtual page's MMU entry carries the page's logical address, so
// VA translation composes with the pool's two-step scheme.
func (as *AddressSpace) Map(b *Buffer) (*Mapping, error) {
	if b == nil {
		return nil, fmt.Errorf("core: nil buffer")
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	pages := (uint64(b.Size()) + pagetable.PageSize - 1) / pagetable.PageSize
	if pages == 0 {
		return nil, fmt.Errorf("core: empty buffer")
	}
	base := as.nextVA
	as.nextVA += (pages + 1) * pagetable.PageSize // +1 guard page
	for i := uint64(0); i < pages; i++ {
		vpage := (base >> pagetable.PageShift) + i
		logical := int64(uint64(b.Addr()) + i*pagetable.PageSize)
		if err := as.mmu.Table.Map(vpage, logical); err != nil {
			return nil, err
		}
	}
	m := &Mapping{VA: base, Buffer: b, Pages: pages}
	as.mappings[base] = m
	return m, nil
}

// Unmap removes the mapping and shoots down its TLB entries.
func (as *AddressSpace) Unmap(m *Mapping) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	if m.unmapped {
		return fmt.Errorf("core: mapping at %#x already unmapped", m.VA)
	}
	if as.mappings[m.VA] != m {
		return fmt.Errorf("core: mapping at %#x not in this address space", m.VA)
	}
	for i := uint64(0); i < m.Pages; i++ {
		vpage := (m.VA >> pagetable.PageShift) + i
		as.mmu.Table.Unmap(vpage)
		as.mmu.TLB.InvalidatePage(vpage)
	}
	delete(as.mappings, m.VA)
	m.unmapped = true
	return nil
}

// translate resolves a VA to a logical address through the MMU.
func (as *AddressSpace) translate(va uint64) (addr.Logical, error) {
	logical, err := as.mmu.Translate(va)
	if err != nil {
		return 0, fmt.Errorf("core: segmentation fault at VA %#x: %w", va, err)
	}
	return addr.Logical(logical), nil
}

// Read loads len(buf) bytes from virtual address va. Accesses crossing
// page boundaries translate each page separately, as hardware would.
func (as *AddressSpace) Read(va uint64, buf []byte) error {
	return as.access(va, buf, false)
}

// Write stores data at virtual address va.
func (as *AddressSpace) Write(va uint64, data []byte) error {
	return as.access(va, data, true)
}

func (as *AddressSpace) access(va uint64, buf []byte, write bool) error {
	done := 0
	for done < len(buf) {
		cur := va + uint64(done)
		pageOff := cur & (pagetable.PageSize - 1)
		n := int(pagetable.PageSize - pageOff)
		if rem := len(buf) - done; rem < n {
			n = rem
		}
		logical, err := as.translate(cur)
		if err != nil {
			return err
		}
		if write {
			err = as.pool.Write(as.server, logical, buf[done:done+n])
		} else {
			err = as.pool.Read(as.server, logical, buf[done:done+n])
		}
		if err != nil {
			return err
		}
		done += n
	}
	return nil
}

// TLBStats reports the address space's TLB hits and misses.
func (as *AddressSpace) TLBStats() (hits, misses uint64) {
	return as.mmu.TLB.Stats()
}
