// Package fabric simulates a CXL-like memory fabric: endpoints (servers or
// pooled-memory devices) attach to a switch through full-duplex adapter
// ports; remote reads traverse the target's memory device, the target's
// egress port, and the requester's ingress port, so port contention and
// incast emerge naturally in the discrete-event simulation.
//
// The per-direction port rate and the remote access latency come from a
// memsim link profile (Link0/Link1 of the paper's Table 2); the latency
// curve covers the whole fabric round trip, as the paper measured it.
package fabric

import (
	"fmt"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/sim"
)

// EndpointID identifies an endpoint on the fabric.
type EndpointID int

// Endpoint is a fabric-attached entity: a server contributing shared
// memory, or a physical memory pool device.
type Endpoint struct {
	ID   EndpointID
	Name string

	eng     *sim.Engine
	ingress *sim.Pipe // toward this endpoint
	egress  *sim.Pipe // away from this endpoint
	mem     *memsim.Memory
	link    memsim.Profile
}

// Mem returns the endpoint's memory device.
func (e *Endpoint) Mem() *memsim.Memory { return e.mem }

// IngressBytes reports the bytes delivered into this endpoint.
func (e *Endpoint) IngressBytes() uint64 { return e.ingress.BytesServed() }

// EgressBytes reports the bytes sent from this endpoint.
func (e *Endpoint) EgressBytes() uint64 { return e.egress.BytesServed() }

// Network is a single-switch fabric. The zero value is not usable; create
// one with NewNetwork.
type Network struct {
	eng       *sim.Engine
	endpoints []*Endpoint
}

// NewNetwork returns an empty fabric on eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng}
}

// Engine returns the simulation engine driving this network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddEndpoint attaches an endpoint whose adapter runs at the link profile's
// bandwidth in each direction and whose local memory follows memProfile.
func (n *Network) AddEndpoint(name string, link memsim.Profile, memProfile memsim.Profile) *Endpoint {
	e := &Endpoint{
		ID:      EndpointID(len(n.endpoints)),
		Name:    name,
		eng:     n.eng,
		ingress: sim.NewPipe(n.eng, link.Bandwidth),
		egress:  sim.NewPipe(n.eng, link.Bandwidth),
		mem:     memsim.NewMemory(n.eng, memProfile),
		link:    link,
	}
	n.endpoints = append(n.endpoints, e)
	return e
}

// Endpoint returns the endpoint with the given id.
func (n *Network) Endpoint(id EndpointID) (*Endpoint, error) {
	if int(id) < 0 || int(id) >= len(n.endpoints) {
		return nil, fmt.Errorf("fabric: no endpoint %d", id)
	}
	return n.endpoints[id], nil
}

// Endpoints returns all endpoints in attachment order.
func (n *Network) Endpoints() []*Endpoint { return n.endpoints }

// Read moves size bytes of memory at target to requester and calls done on
// delivery. A local read (requester == target) touches only the local
// memory device. A remote read pays the link's loaded latency, the remote
// memory device, the target's egress port, and the requester's ingress
// port; throughput is bounded by the slowest stage and incast contention
// on the requester's ingress emerges when multiple targets respond.
func (n *Network) Read(requester, target *Endpoint, size int, done func()) {
	if requester == target {
		target.mem.Read(size, done)
		return
	}
	lat := target.link.Latency.Latency(target.egress.Utilization())
	n.eng.After(sim.Duration(lat), func() {
		target.mem.Read(size, func() {
			target.egress.Transfer(size, func() {
				requester.ingress.Transfer(size, done)
			})
		})
	})
}

// Write moves size bytes from requester into memory at target, calling done
// once the write is accepted by the target's memory device.
func (n *Network) Write(requester, target *Endpoint, size int, done func()) {
	if requester == target {
		target.mem.Read(size, done) // symmetric timing for the model
		return
	}
	lat := target.link.Latency.Latency(requester.egress.Utilization())
	n.eng.After(sim.Duration(lat), func() {
		requester.egress.Transfer(size, func() {
			target.ingress.Transfer(size, func() {
				target.mem.Read(size, done)
			})
		})
	})
}

// FluidPort exposes the endpoint's adapter directions as fluid resources
// for the analytic bandwidth model. The same endpoint always returns the
// same resources so concurrent flows contend.
type FluidPort struct {
	Ingress *memsim.FluidResource
	Egress  *memsim.FluidResource
	Memory  *memsim.FluidResource
}

// FluidView builds the fluid resources for every endpoint.
func (n *Network) FluidView() map[EndpointID]FluidPort {
	v := make(map[EndpointID]FluidPort, len(n.endpoints))
	for _, e := range n.endpoints {
		v[e.ID] = FluidPort{
			Ingress: &memsim.FluidResource{Name: e.Name + "/in", Rate: e.link.Bandwidth},
			Egress:  &memsim.FluidResource{Name: e.Name + "/out", Rate: e.link.Bandwidth},
			Memory:  &memsim.FluidResource{Name: e.Name + "/mem", Rate: e.mem.Profile.Bandwidth},
		}
	}
	return v
}
