package core

import (
	"fmt"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/sizing"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// BalanceReport summarizes one locality-balancing round.
type BalanceReport struct {
	Planned  int
	Migrated int
	Skipped  int
}

// BalanceOnce runs one round of the locality balancer (§5 "Locality
// balancing"): it consults the access profile, plans slice migrations
// toward dominant accessors, executes them (preserving every logical
// address), and ages the profile.
func (p *Pool) BalanceOnce() (BalanceReport, error) {
	// A balancing round is a root trace: migration stalls tail latencies
	// (each move holds a stripe lock in write mode), so the span's
	// duration and byte count are first-order signals.
	var sp telemetry.Span
	traced := p.obs != nil
	if traced {
		sp = p.obs.tracer.Begin(telemetry.SpanContext{}, "pool.balance")
	}
	rep, err := p.balanceOnce()
	if traced {
		p.endChild(&sp, rep.Migrated*int(SliceSize), err)
	}
	return rep, err
}

func (p *Pool) balanceOnce() (BalanceReport, error) {
	p.harvestAccessCounts()
	moves, err := migrate.Plan(p.matrix, p.global, p.cfg.Migration)
	if err != nil {
		return BalanceReport{}, err
	}
	rep := BalanceReport{Planned: len(moves)}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, mv := range moves {
		if p.isDead(mv.To) || p.isDead(mv.From) {
			rep.Skipped++
			continue
		}
		if err := p.migrateSliceLocked(mv.Slice, mv.To); err != nil {
			rep.Skipped++
			continue
		}
		rep.Migrated++
	}
	p.matrix.Decay()
	p.metrics.Counter("pool.migrations").Add(uint64(rep.Migrated))
	return rep, nil
}

// migrateSliceLocked moves one slice's backing to server to. The logical
// address does not change: only the coarse map binding and the two local
// maps do. Migration refuses to collocate a slice with its own replicas
// or its stripe's other shards — that would silently void the protection.
//
// The caller holds p.mu; the copy and rebind run under the slice's
// stripe lock in write mode, so a migration is atomic with respect to
// concurrent Read/Write traffic on the slice: an access lands entirely
// on the old backing or entirely on the new one.
func (p *Pool) migrateSliceLocked(s uint64, to addr.ServerID) error {
	back := p.lookupSlice(s)
	if back == nil {
		return fmt.Errorf("%w: slice %d", addr.ErrUnmapped, s)
	}
	if back.server == to {
		return nil
	}
	if back.buf != nil {
		if avoid := p.protectionServersLocked(back.buf, s-back.buf.firstSlice()); avoid[to] {
			return fmt.Errorf("core: migrating slice %d to server %d would collocate with its protection", s, to)
		}
	}
	newOff, err := p.regions[to].Alloc(SliceSize)
	if err != nil {
		return fmt.Errorf("core: migrate slice %d to %d: %w", s, to, err)
	}
	st := p.stripeFor(s)
	st.Lock()
	defer st.Unlock()
	buf := make([]byte, SliceSize)
	if err := p.nodes[back.server].ReadAt(buf, back.offset); err != nil {
		_ = p.regions[to].Free(newOff)
		return err
	}
	if err := p.nodes[to].WriteAt(buf, newOff); err != nil {
		_ = p.regions[to].Free(newOff)
		return err
	}
	from := back.server
	oldOff := back.offset
	p.locals[to].MapSlice(s, newOff)
	if err := p.global.Bind(addr.Range{Start: addr.SliceBase(s), Size: SliceSize}, to); err != nil {
		p.locals[to].UnmapSlice(s)
		_ = p.regions[to].Free(newOff)
		return err
	}
	p.locals[from].UnmapSlice(s)
	_ = p.regions[from].Free(oldOff)
	p.nodes[from].DropRange(oldOff, SliceSize) // contents were copied; free the backing pages
	back.server = to
	back.offset = newOff
	if p.caches != nil {
		// The slice is local to its new owner now; drop the owner's cached
		// copies so its reads hit backing DRAM directly (local pages are
		// never cached). Other nodes' copies stay valid — the bytes did
		// not change, only their home.
		base := uint64(addr.SliceBase(s))
		p.caches[to].InvalidateRange(base>>p.pageShift, uint64(SliceSize)>>p.pageShift)
	}
	return nil
}

// MigrateSlice forces one slice's backing onto a specific server (the
// mechanism underneath both the balancer and administrative moves).
func (p *Pool) MigrateSlice(s uint64, to addr.ServerID) error {
	if int(to) < 0 || int(to) >= len(p.nodes) {
		return fmt.Errorf("core: no server %d", to)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.isDead(to) {
		return fmt.Errorf("%w: server %d", ErrServerDead, to)
	}
	return p.migrateSliceLocked(s, to)
}

// AccessProfile exposes the balancer's access matrix (for tests and
// tooling), first draining the hot path's per-slice atomic counters into
// it.
func (p *Pool) AccessProfile() *migrate.AccessMatrix {
	p.harvestAccessCounts()
	return p.matrix
}

// ResizeReport summarizes one sizing round.
type ResizeReport struct {
	// SharedBytes is the achieved shared size per server (after clamping
	// to what fragmentation allowed).
	SharedBytes []int64
	// Value is the optimizer's objective for its chosen plan.
	Value float64
}

// ResizeShared moves one server's private/shared boundary. Shrinking
// fails if allocated slices occupy the tail (migrate them first).
func (p *Pool) ResizeShared(s addr.ServerID, bytes int64) error {
	if int(s) < 0 || int(s) >= len(p.nodes) {
		return fmt.Errorf("core: no server %d", s)
	}
	bytes = bytes - bytes%SliceSize
	if bytes < 0 || bytes > p.nodes[s].Capacity() {
		return fmt.Errorf("core: shared size %d outside [0,%d]", bytes, p.nodes[s].Capacity())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.regions[s].SetLimit(bytes); err != nil {
		return err
	}
	return p.nodes[s].Resize(bytes)
}

// SizeOnce runs the global sizing optimization (§5 "Sizing the shared
// regions") against the given per-server loads and applies the result
// best-effort: growth always succeeds, shrinks are clamped by
// fragmentation.
func (p *Pool) SizeOnce(loads []sizing.ServerLoad, requiredPool int64) (ResizeReport, error) {
	if len(loads) != len(p.nodes) {
		return ResizeReport{}, fmt.Errorf("core: %d loads for %d servers", len(loads), len(p.nodes))
	}
	res, err := sizing.Optimize(loads, requiredPool, SliceSize)
	if err != nil {
		return ResizeReport{}, err
	}
	rep := ResizeReport{Value: res.Value, SharedBytes: make([]int64, len(loads))}
	// Grow first so shrinking servers have somewhere to evacuate, then
	// shrink with compaction.
	for i := range loads {
		if res.SharedBytes[i] >= p.regions[i].Size() {
			s := addr.ServerID(i)
			if err := p.ResizeShared(s, res.SharedBytes[i]); err == nil {
				rep.SharedBytes[i] = res.SharedBytes[i]
			} else {
				rep.SharedBytes[i] = p.regions[i].Size()
			}
		}
	}
	for i := range loads {
		if res.SharedBytes[i] < p.regions[i].Size() {
			s := addr.ServerID(i)
			if err := p.ShrinkShared(s, res.SharedBytes[i]); err == nil {
				rep.SharedBytes[i] = res.SharedBytes[i]
			} else {
				// Shrink blocked even after compaction: keep current.
				rep.SharedBytes[i] = p.regions[i].Size()
			}
		}
	}
	p.metrics.Counter("pool.resizes").Inc()
	return rep, nil
}
