// Command lmplint runs the repository's custom analyzers — the
// mechanical form of the invariants DESIGN.md states in prose — over the
// packages matched by the given patterns (default ./...).
//
//	go run ./cmd/lmplint ./...
//	go run ./cmd/lmplint -json ./...
//	go run ./cmd/lmplint -sarif ./...
//
// The per-package analyzers run on each loaded unit; the whole-program
// analyzers (lockorder's lock graph, pinregion, hotpath) share one
// interprocedural summary built over all units from the same single
// `go list -export` load. Diagnostics in files under a testdata
// directory are skipped — fixtures are analyzed by their own tests, not
// by the tree-wide lint.
//
// Exit status is 1 when any diagnostic is reported, 2 on a loading or
// internal error. A finding can be waived in place with a justified
// suppression directive on or directly above the offending line:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a bare directive does not suppress. A
// directive that suppresses nothing is itself a finding — stale waivers
// fail the lint instead of rotting in place.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/atomichygiene"
	"github.com/lmp-project/lmp/internal/analysis/ctxflow"
	"github.com/lmp-project/lmp/internal/analysis/hotpath"
	"github.com/lmp-project/lmp/internal/analysis/loader"
	"github.com/lmp-project/lmp/internal/analysis/lockorder"
	"github.com/lmp-project/lmp/internal/analysis/pinregion"
	"github.com/lmp-project/lmp/internal/analysis/sentinelerr"
	"github.com/lmp-project/lmp/internal/analysis/simtime"
	"github.com/lmp-project/lmp/internal/analysis/spanflow"
	"github.com/lmp-project/lmp/internal/analysis/summary"
)

var analyzers = []*analysis.Analyzer{
	atomichygiene.Analyzer,
	ctxflow.Analyzer,
	lockorder.Analyzer,
	sentinelerr.Analyzer,
	simtime.Analyzer,
	spanflow.Analyzer,
}

var programAnalyzers = []*summary.ProgramAnalyzer{
	lockorder.ProgramAnalyzer,
	pinregion.Analyzer,
	hotpath.Analyzer,
}

// position is one resolved source location.
type position struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

func (p position) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Column) }

// step is one entry of a finding's witness chain.
type step struct {
	Pos     position `json:"position"`
	Message string   `json:"message"`
}

// finding is one diagnostic in the driver's output shape, shared by the
// text, JSON, and SARIF renderers.
type finding struct {
	Analyzer string   `json:"analyzer"`
	Pos      position `json:"position"`
	Message  string   `json:"message"`
	Related  []step   `json:"related,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lmplint [-list] [-json|-sarif] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		for _, a := range programAnalyzers {
			fmt.Printf("%-15s [whole-program] %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "lmplint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	units, err := loader.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var findings []finding
	for _, u := range units {
		for _, a := range analyzers {
			diags, err := u.Run(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lmplint: %s on %s: %v\n", a.Name, u.PkgPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				findings = append(findings, toFinding(u.Fset, a.Name, d))
			}
		}
	}

	// One interprocedural summary, shared by every whole-program analyzer.
	prog := summary.Build(units)
	for _, a := range programAnalyzers {
		diags, err := prog.Run(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmplint: %s: %v\n", a.Name, err)
			os.Exit(2)
		}
		for _, d := range diags {
			findings = append(findings, toFinding(prog.Fset, a.Name, d))
		}
	}

	// Every analyzer has run: a waiver that suppressed nothing is stale.
	for _, u := range units {
		for _, d := range u.Directives() {
			if d.Used() {
				continue
			}
			findings = append(findings, finding{
				Analyzer: "lmplint",
				Pos:      position{File: d.File, Line: d.Line, Column: 1},
				Message: fmt.Sprintf("unused //lint:ignore %s directive (suppresses nothing); remove it",
					strings.Join(d.Names, ",")),
			})
		}
	}

	// Fixture files are linted by their own analysistest runs, not here.
	kept := findings[:0]
	for _, f := range findings {
		if !underTestdata(f.Pos.File) {
			kept = append(kept, f)
		}
	}
	findings = kept

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos != b.Pos {
			if a.Pos.File != b.Pos.File {
				return a.Pos.File < b.Pos.File
			}
			if a.Pos.Line != b.Pos.Line {
				return a.Pos.Line < b.Pos.Line
			}
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "lmplint: %v\n", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "lmplint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
			for _, s := range f.Related {
				fmt.Printf("\t%s: %s\n", s.Pos, s.Message)
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lmplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func toFinding(fset *token.FileSet, name string, d analysis.Diagnostic) finding {
	f := finding{Analyzer: name, Pos: toPosition(fset, d.Pos), Message: d.Message}
	for _, r := range d.Related {
		f.Related = append(f.Related, step{Pos: toPosition(fset, r.Pos), Message: r.Message})
	}
	return f
}

func toPosition(fset *token.FileSet, pos token.Pos) position {
	p := fset.Position(pos)
	return position{File: p.Filename, Line: p.Line, Column: p.Column}
}

// underTestdata reports whether the file path has a testdata component.
func underTestdata(file string) bool {
	for _, part := range strings.Split(file, string(os.PathSeparator)) {
		if part == "testdata" {
			return true
		}
	}
	return false
}
