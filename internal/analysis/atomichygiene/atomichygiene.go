// Package atomichygiene defines an analyzer catching the data-race class
// the pool's lock-free structures are most exposed to: a struct field
// updated through sync/atomic in one place and read or written with a
// plain load/store in another. The atomic slice table, dead flags, and
// per-page statistics all rely on every access of such a field being
// atomic; one plain access is a silent race the race detector only finds
// if a test happens to hit the interleaving.
package atomichygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/lmp-project/lmp/internal/analysis"
)

// Analyzer is the atomichygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomichygiene",
	Doc: "flag struct fields accessed both through sync/atomic functions and through " +
		"plain loads/stores in the same package; migrate the field to a typed " +
		"atomic (atomic.Uint64 etc.) or make every access atomic",
	Run: run,
}

// atomicFuncs are the sync/atomic functions whose first argument is the
// address of the word they operate on.
var atomicFuncs = []string{
	"AddInt32", "AddInt64", "AddUint32", "AddUint64", "AddUintptr",
	"LoadInt32", "LoadInt64", "LoadUint32", "LoadUint64", "LoadUintptr", "LoadPointer",
	"StoreInt32", "StoreInt64", "StoreUint32", "StoreUint64", "StoreUintptr", "StorePointer",
	"SwapInt32", "SwapInt64", "SwapUint32", "SwapUint64", "SwapUintptr", "SwapPointer",
	"CompareAndSwapInt32", "CompareAndSwapInt64", "CompareAndSwapUint32",
	"CompareAndSwapUint64", "CompareAndSwapUintptr", "CompareAndSwapPointer",
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: fields whose address feeds a sync/atomic call, and the
	// selector nodes that are part of those calls.
	atomicAt := make(map[*types.Var]token.Pos)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := analysis.PkgFuncCall(info, call, "sync/atomic", atomicFuncs...); !ok || len(call.Args) == 0 {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if field := fieldOf(info, sel); field != nil {
				if _, seen := atomicAt[field]; !seen {
					atomicAt[field] = sel.Pos()
				}
				inAtomicCall[sel] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: any other access of those fields is a mixed access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			field := fieldOf(info, sel)
			if field == nil {
				return true
			}
			if at, ok := atomicAt[field]; ok {
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic (e.g. %s) but plainly here; mixed atomic/plain access is a data race",
					field.Name(), pass.Fset.Position(at))
			}
			return true
		})
	}
	return nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}
