// The tail-latency section of the -json / -compare modes (and the
// standalone `-experiment tail`): the payoff number for hedged replica
// reads. A primary daemon with a seeded heavy-tail delay profile (a few
// percent of requests stall for milliseconds — the paper's shared-pool
// interference case) serves the same workload twice: once unhedged, once
// with rpc.Hedger racing a fast replica after the adaptive delay. The
// headline ratio is unhedged p99 over hedged p99; absolute percentiles
// track the machine, the ratio cancels shared jitter.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/lmp-project/lmp/internal/rpc"
)

// tailConfig pins the tail workload shape inside the JSON record.
type tailConfig struct {
	Ops          int `json:"ops"`
	PayloadBytes int `json:"payload_bytes"`
	SlowPct      int `json:"slow_pct"`      // percent of primary calls that stall
	SlowDelayUS  int `json:"slow_delay_us"` // stall duration
}

// The stall is deliberately deep (20ms): on idle or virtualized hosts a
// sub-millisecond hedge timer can fire milliseconds late (Go's parked-P
// timer wake latency), so the stall must dwarf that jitter for the
// improvement ratio to measure hedging rather than the host's timer
// granularity.
var defaultTailConfig = tailConfig{
	Ops:          2000,
	PayloadBytes: 64,
	SlowPct:      8,
	SlowDelayUS:  20000,
}

// tailRecord is one variant's measured latency distribution. The hedged
// record carries the headline P99ImprovementX ratio (unhedged p99 over
// hedged p99); that ratio, not the raw nanoseconds, is what -compare
// gates on.
type tailRecord struct {
	Name            string     `json:"name"`
	P50NS           float64    `json:"p50_ns"`
	P99NS           float64    `json:"p99_ns"`
	P999NS          float64    `json:"p999_ns"`
	Hedges          uint64     `json:"hedges,omitempty"`
	HedgeWins       uint64     `json:"hedge_wins,omitempty"`
	P99ImprovementX float64    `json:"p99_improvement_x,omitempty"`
	Config          tailConfig `json:"config"`
}

const methTailBenchEcho = 1

// minTailImprovement is the acceptance floor: hedging against a fast
// replica must cut the heavy-tail p99 by at least this factor.
const minTailImprovement = 2.0

// startTailBenchServer brings up an echo server; when slow, a seeded
// fraction of its calls stall for the configured delay — the degraded
// primary. The replica runs the same handler with slow=false.
func startTailBenchServer(cfg tailConfig, slow bool, seed int64) (*rpc.Server, string) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	s := rpc.NewServer()
	s.Handle(methTailBenchEcho, func(p []byte) ([]byte, error) {
		if slow {
			mu.Lock()
			stall := rng.Intn(100) < cfg.SlowPct
			mu.Unlock()
			if stall {
				time.Sleep(time.Duration(cfg.SlowDelayUS) * time.Microsecond)
			}
		}
		return p, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	return s, addr
}

// runTailVariant drives cfg.Ops sequential echo calls against the
// degraded primary — hedged against a fast replica or not — and returns
// the per-call latency percentiles.
func runTailVariant(cfg tailConfig, hedged bool) tailRecord {
	sp, addrP := startTailBenchServer(cfg, true, 11)
	defer sp.Close()
	sr, addrR := startTailBenchServer(cfg, false, 13)
	defer sr.Close()
	cp, err := rpc.Dial(addrP)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	defer cp.Close()
	cr, err := rpc.Dial(addrR)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmpbench: %v\n", err)
		os.Exit(1)
	}
	defer cr.Close()

	var h *rpc.Hedger
	if hedged {
		// Track the median, not the default p95: with SlowPct at 8% the
		// p95 sits inside the stall cluster and the adaptive delay would
		// chase the very tail it is meant to cut. Median×3 with a 1ms cap
		// keeps the delay just above healthy latency.
		h = rpc.NewHedger(cp, cr, rpc.HedgePolicy{
			Quantile:   0.50,
			Multiplier: 3,
			MinDelay:   100 * time.Microsecond,
			MaxDelay:   time.Millisecond,
		})
	}
	call := func(p []byte) ([]byte, error) {
		if h != nil {
			return h.Call(methTailBenchEcho, p)
		}
		return cp.Call(methTailBenchEcho, p)
	}

	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Warm both connections (and the hedge tracker's cold start) off the
	// clock.
	for i := 0; i < 20; i++ {
		if _, err := call(payload); err != nil {
			fmt.Fprintf(os.Stderr, "lmpbench: warm-up call: %v\n", err)
			os.Exit(1)
		}
	}

	lat := make([]int64, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		t0 := time.Now()
		if _, err := call(payload); err != nil {
			fmt.Fprintf(os.Stderr, "lmpbench: tail call: %v\n", err)
			os.Exit(1)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		return float64(lat[int(p*float64(len(lat)-1))])
	}
	rec := tailRecord{
		Name:   "TailLatency/unhedged",
		P50NS:  pct(0.50),
		P99NS:  pct(0.99),
		P999NS: pct(0.999),
		Config: cfg,
	}
	if hedged {
		rec.Name = "TailLatency/hedged"
		st := h.Stats()
		rec.Hedges = st.Hedges
		rec.HedgeWins = st.HedgeWins
	}
	return rec
}

// medianTailVariant keeps the median of three runs by p99, so the
// baseline doesn't record a lucky (or unlucky) outlier.
func medianTailVariant(cfg tailConfig, hedged bool) tailRecord {
	runs := []tailRecord{
		runTailVariant(cfg, hedged),
		runTailVariant(cfg, hedged),
		runTailVariant(cfg, hedged),
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].P99NS < runs[j].P99NS })
	return runs[1]
}

// runTailSection measures both variants and computes the headline p99
// ratio. It hard-fails below minTailImprovement unless soft is set (the
// -compare path warns instead).
func runTailSection(soft bool) []tailRecord {
	cfg := defaultTailConfig
	unhedged := medianTailVariant(cfg, false)
	hedged := medianTailVariant(cfg, true)
	hedged.P99ImprovementX = unhedged.P99NS / hedged.P99NS
	for _, rec := range []tailRecord{unhedged, hedged} {
		fmt.Printf("%-32s p50=%8.0fns p99=%9.0fns p99.9=%9.0fns hedges=%d wins=%d\n",
			rec.Name, rec.P50NS, rec.P99NS, rec.P999NS, rec.Hedges, rec.HedgeWins)
	}
	fmt.Printf("%-32s %11.2fx p99 vs unhedged (floor %.1fx)\n",
		"hedged read improvement", hedged.P99ImprovementX, minTailImprovement)
	if hedged.P99ImprovementX < minTailImprovement {
		msg := fmt.Sprintf("lmpbench: hedged p99 improvement %.2fx below the %.1fx floor",
			hedged.P99ImprovementX, minTailImprovement)
		if !soft {
			fmt.Fprintln(os.Stderr, msg)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, msg+" (non-blocking in -compare; rerun on quiet hardware)")
	}
	if hedged.Hedges == 0 {
		fmt.Fprintln(os.Stderr, "lmpbench: warning: hedged run fired no hedges (tail not exercised)")
	}
	return []tailRecord{unhedged, hedged}
}
