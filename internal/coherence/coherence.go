// Package coherence implements the software-managed coherence engine for
// the LMP's small coherent region (§3.2, §5 "Cache coherence"). It is a
// directory protocol with MSI states, an inclusive snoop filter of bounded
// capacity with back-invalidation on overflow, and a configurable tracking
// granularity: tracking finer than a cache line avoids false sharing, the
// optimization the paper calls out.
//
// The engine counts protocol traffic (fetches, invalidations, writebacks,
// back-invalidations) so policies and benchmarks can compare granularities
// and coordination patterns.
package coherence

import (
	"errors"
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/telemetry"
)

// NodeID identifies a caching agent (a server).
type NodeID int

// State is a directory entry's MSI state.
type State int

const (
	// Invalid: no cached copies.
	Invalid State = iota
	// Shared: one or more read-only copies.
	Shared
	// Modified: exactly one writable copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ErrRegionFull reports that the coherent region cannot track more blocks
// even after back-invalidation (should not happen with capacity >= 1).
var ErrRegionFull = errors.New("coherence: snoop filter cannot admit block")

// Stats aggregates protocol traffic counters.
type Stats struct {
	Fetches         uint64 // block copies granted to a node
	Invalidations   uint64 // copies killed on write upgrades
	Writebacks      uint64 // dirty data forced back on downgrades
	BackInvalidates uint64 // filter-capacity evictions (inclusive filter)
	Hits            uint64 // access already permitted, no traffic
	LostDirty       uint64 // modified copies lost to node crashes (DropNode)
}

type block struct {
	state   State
	holders map[NodeID]struct{}
	owner   NodeID
	// lru clock for victim choice
	stamp uint64
}

// Directory is the coherence engine. It is safe for concurrent use.
type Directory struct {
	granularity int64
	capacity    int

	mu     sync.Mutex
	blocks map[int64]*block
	clock  uint64
	stats  Stats

	// Telemetry mirrors the internal counters into a registry if set.
	Registry *telemetry.Registry

	// OnBackInvalidate, if set, is called when the inclusive snoop
	// filter evicts a block to admit another: every listed holder's
	// cached copy of the block must be discarded to preserve inclusivity
	// (the directory no longer tracks them). The callback runs under the
	// directory lock and must not call back into the directory; callees
	// with their own locks (the page cache's shards) must order them
	// strictly after the directory's.
	OnBackInvalidate func(block int64, holders []NodeID)
}

// NewDirectory returns a coherence directory tracking blocks of
// granularity bytes, with an inclusive snoop filter capacity of
// capacityBlocks entries. Granularity must be a positive power of two.
func NewDirectory(granularity int64, capacityBlocks int) (*Directory, error) {
	if granularity <= 0 || granularity&(granularity-1) != 0 {
		return nil, fmt.Errorf("coherence: granularity %d must be a power of two", granularity)
	}
	if capacityBlocks <= 0 {
		return nil, fmt.Errorf("coherence: capacity %d must be positive", capacityBlocks)
	}
	return &Directory{
		granularity: granularity,
		capacity:    capacityBlocks,
		blocks:      make(map[int64]*block),
	}, nil
}

// Granularity reports the tracking block size.
func (d *Directory) Granularity() int64 { return d.granularity }

// BlockOf maps a byte address in the coherent region to its block index.
func (d *Directory) BlockOf(addr int64) int64 { return addr / d.granularity }

// Stats returns a copy of the traffic counters.
func (d *Directory) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// TrackedBlocks reports the snoop filter occupancy.
func (d *Directory) TrackedBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// StateOf reports the directory state of the block containing addr.
func (d *Directory) StateOf(addr int64) (State, []NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.blocks[d.BlockOf(addr)]
	if b == nil {
		return Invalid, nil
	}
	var hs []NodeID
	for h := range b.holders {
		hs = append(hs, h)
	}
	return b.state, hs
}

// ensure admits a block into the filter, back-invalidating a victim when
// the inclusive filter is full.
func (d *Directory) ensure(idx int64) (*block, error) {
	if b := d.blocks[idx]; b != nil {
		return b, nil
	}
	if len(d.blocks) >= d.capacity {
		// Evict the least-recently-touched block: inclusive filter means
		// every cached copy of the victim must be killed.
		var victimIdx int64
		var victim *block
		for i, b := range d.blocks {
			if victim == nil || b.stamp < victim.stamp {
				victim, victimIdx = b, i
			}
		}
		if victim == nil {
			return nil, ErrRegionFull
		}
		d.stats.BackInvalidates++
		d.stats.Invalidations += uint64(len(victim.holders))
		if victim.state == Modified {
			d.stats.Writebacks++
		}
		delete(d.blocks, victimIdx)
		if d.Registry != nil {
			d.Registry.Counter("coherence.back_invalidates").Inc()
		}
		if d.OnBackInvalidate != nil && len(victim.holders) > 0 {
			holders := make([]NodeID, 0, len(victim.holders))
			for h := range victim.holders {
				holders = append(holders, h)
			}
			d.OnBackInvalidate(victimIdx, holders)
		}
	}
	b := &block{state: Invalid, holders: make(map[NodeID]struct{})}
	d.blocks[idx] = b
	return b, nil
}

// AcquireRead obtains a readable copy of the block containing addr for
// node. It returns the list of nodes that had to downgrade (writeback).
func (d *Directory) AcquireRead(node NodeID, addrByte int64) ([]NodeID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock++
	idx := d.BlockOf(addrByte)
	b, err := d.ensure(idx)
	if err != nil {
		return nil, err
	}
	b.stamp = d.clock
	switch b.state {
	case Invalid:
		b.state = Shared
		b.holders[node] = struct{}{}
		d.stats.Fetches++
		return nil, nil
	case Shared:
		if _, ok := b.holders[node]; ok {
			d.stats.Hits++
			return nil, nil
		}
		b.holders[node] = struct{}{}
		d.stats.Fetches++
		return nil, nil
	case Modified:
		if b.owner == node {
			d.stats.Hits++
			return nil, nil
		}
		// Downgrade the owner: writeback, then share.
		prev := b.owner
		d.stats.Writebacks++
		d.stats.Fetches++
		b.state = Shared
		b.holders[node] = struct{}{}
		b.holders[prev] = struct{}{}
		return []NodeID{prev}, nil
	}
	return nil, fmt.Errorf("coherence: corrupt state %v", b.state)
}

// AcquireWrite obtains an exclusive writable copy for node, invalidating
// all other holders; the invalidated nodes are returned.
func (d *Directory) AcquireWrite(node NodeID, addrByte int64) ([]NodeID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock++
	idx := d.BlockOf(addrByte)
	b, err := d.ensure(idx)
	if err != nil {
		return nil, err
	}
	b.stamp = d.clock
	if b.state == Modified && b.owner == node {
		d.stats.Hits++
		return nil, nil
	}
	var killed []NodeID
	for h := range b.holders {
		if h != node {
			killed = append(killed, h)
		}
	}
	if b.state == Modified && b.owner != node {
		d.stats.Writebacks++
	}
	d.stats.Invalidations += uint64(len(killed))
	if _, hadCopy := b.holders[node]; !hadCopy {
		d.stats.Fetches++
	}
	b.state = Modified
	b.owner = node
	b.holders = map[NodeID]struct{}{node: {}}
	return killed, nil
}

// DropNode removes every copy node holds — a crash-stop failure. Unlike
// Evict, a dropped Modified owner performs no writeback: the dirty data
// died with the server. The count of such lost dirty blocks is returned;
// the caller decides whether a protected backing store masks them. The
// directory itself stays consistent: no block retains the dead node as a
// holder or owner.
func (d *Directory) DropNode(node NodeID) (lostDirty int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for idx, b := range d.blocks {
		if _, ok := b.holders[node]; !ok {
			continue
		}
		delete(b.holders, node)
		if b.state == Modified && b.owner == node {
			// In Modified the owner is the sole holder, so the block
			// empties and is untracked below.
			lostDirty++
			b.state = Invalid
		}
		if len(b.holders) == 0 {
			delete(d.blocks, idx)
		}
	}
	d.stats.LostDirty += uint64(lostDirty)
	if d.Registry != nil && lostDirty > 0 {
		d.Registry.Counter("coherence.lost_dirty").Add(uint64(lostDirty))
	}
	return lostDirty
}

// Evict removes node's copy of the block containing addr (a cache
// replacement on the node), writing back if it was the modified owner.
func (d *Directory) Evict(node NodeID, addrByte int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	idx := d.BlockOf(addrByte)
	b := d.blocks[idx]
	if b == nil {
		return
	}
	if _, ok := b.holders[node]; !ok {
		return
	}
	delete(b.holders, node)
	if b.state == Modified && b.owner == node {
		d.stats.Writebacks++
		b.state = Invalid
	}
	if len(b.holders) == 0 {
		delete(d.blocks, idx)
	} else if b.state == Modified {
		b.state = Shared
	}
}
