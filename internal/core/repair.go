package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// This file is the parallel repair / live-migration engine: the pool's
// control plane for re-homing slice backings. Both repair (crashed
// owner) and migration (locality balancing, administrative moves) run
// as two-phase copies that hold locks only for short commit windows:
//
//	plan      p.mu          validate, reserve the destination extent
//	pre-copy  chunked RLock bulk copy while foreground traffic proceeds
//	commit    p.mu + stripe re-validate, copy the dirty delta, rebind
//
// Every mover of a slice serializes on the slice's commit-window lock
// (sliceBacking.commit), held across all three phases. Because all
// movers hold it, a commit holder may read the backing fields it is
// about to re-validate without racing another mover; foreground writers
// to a dead-owned slice also park on it (recoverSliceInner), which is
// what freezes a crashed slice's replica bytes during repair.
//
// Lock order: commit-window → structural (p.mu) → stripe → ec.mu.
// Nothing acquires a commit-window lock while holding any of the inner
// three.

// RepairConfig tunes the repair/migration engine (see DESIGN.md
// "Parallel recovery and live migration" and WithRepairParallelism).
type RepairConfig struct {
	// Parallelism bounds the worker pool RepairServer fans slice
	// reconstruction across. 0 or 1 repairs serially in slice-table
	// order — the deterministic default the chaos harness replays.
	Parallelism int
	// Serialized restores the pre-engine migration protocol for A/B
	// measurement: the whole slice copy runs inside the structural and
	// stripe write locks instead of the two-phase pre-copy + dirty-delta
	// commit. Repair is unaffected. lmpbench uses this as the baseline
	// for the foreground-stall comparison.
	Serialized bool
	// FabricDelay, when non-nil, is invoked once per slice-sized
	// transfer the engine issues (repair shard reads, migration bulk
	// copies), outside any lock on the pipelined paths. lmpbench injects
	// a sleep here to model fabric RTT; production configs leave it nil.
	FabricDelay func()
}

// commitWindow is the per-slice mover lock. It is a distinct type (not
// a bare sync.Mutex field) so lmplint classifies it as its own lock
// class in the whole-program lock graph.
type commitWindow struct {
	sync.Mutex
}

// moveChunk is the pre-copy granularity: each chunk is read under its
// own short stripe read-lock hold, so a bulk copy never blocks a
// foreground writer for more than one chunk.
const moveChunk = 256 << 10

// sliceScratch pools slice-size staging buffers for the engine.
// Reconstruction touches up to K+M of them per slice and migration one
// per move; allocating 2MiB a pop made the old control plane's
// allocation rate scale with repair size. Package-level (not a local)
// so the whole-program allocation analysis attributes the make to
// initialization, not to a lock-holding caller.
var sliceScratch = sync.Pool{New: func() any {
	b := make([]byte, SliceSize)
	return &b
}}

func getSliceBuf() *[]byte  { return sliceScratch.Get().(*[]byte) }
func putSliceBuf(b *[]byte) { sliceScratch.Put(b) }

// errMoveStale reports a move whose slice was freed, re-homed, or
// crashed between planning and commit; the balancer classifies these as
// skips that do not consume the round's budget.
var errMoveStale = errors.New("core: slice changed during move")

// errCollocate reports a migration refused because the target holds the
// slice's protection state.
var errCollocate = errors.New("core: migration would collocate a slice with its protection")

// fabricDelay charges one modeled fabric round-trip when the config
// injects one.
func (p *Pool) fabricDelay() {
	if d := p.cfg.Repair.FabricDelay; d != nil {
		d()
	}
}

// repairWorkers is the effective repair fan-out.
func (p *Pool) repairWorkers() int {
	if n := p.cfg.Repair.Parallelism; n > 1 {
		return n
	}
	return 1
}

// RepairServer proactively rebuilds every slice owned by the crashed
// server s, then re-homes the protection state (replica chunks, parity
// blocks) the dead server hosted for other buffers, restoring the full
// tolerated-failure count. It reports how many slices were recovered and
// returns the first error in deterministic (snapshot) order, after
// attempting all slices and protection blocks.
func (p *Pool) RepairServer(s addr.ServerID) (recovered int, firstErr error) {
	// Repair is a root trace; with the engine it no longer holds the
	// structural lock end-to-end, so its duration now bounds fabric work,
	// not allocation stalls.
	var sp telemetry.Span
	sc := telemetry.SpanContext{}
	traced := p.obs != nil
	if traced {
		sp = p.obs.tracer.Begin(telemetry.SpanContext{}, "pool.repair")
		sp.Server = int(s)
		sc = sp.Context()
	}
	recovered, firstErr = p.repairServer(sc, s)
	if traced {
		p.endChild(&sp, recovered*int(SliceSize), firstErr)
	}
	return recovered, firstErr
}

// repairItem is one dead-owned primary slice in a repair snapshot.
type repairItem struct {
	slice uint64
	back  *sliceBacking
}

// protItem is one protection block to re-home in repair phase B: a
// replica chunk (kind protReplica) or a parity block (protParity).
type protItem struct {
	kind protKind
	b    *Buffer
	c    int    // replica: copy index
	idx  uint64 // replica: slice index within the buffer
	si   int    // parity: stripe index
	m    int    // parity: parity row
}

type protKind int

const (
	protReplica protKind = iota
	protParity
)

// repairServer snapshots the dead server's work under p.mu, then runs
// it in two phases across a bounded worker pool: primaries first, then
// — after a sync point, because parity rebuild reads the data shards —
// the protection blocks. Locks are held only inside each item's plan
// and commit windows, never across the fan-out.
func (p *Pool) repairServer(sc telemetry.SpanContext, s addr.ServerID) (recovered int, firstErr error) {
	p.mu.Lock()
	if !p.isDead(s) {
		p.mu.Unlock()
		return 0, fmt.Errorf("core: server %d is alive", s)
	}
	var prim []repairItem
	t := p.table.Load()
	for sl := range t.entries {
		back := t.entries[sl].Load()
		if back == nil || back.server != s {
			continue
		}
		prim = append(prim, repairItem{slice: uint64(sl), back: back})
	}
	var prot []protItem
	for _, b := range p.buffers {
		for c := range b.copies {
			for i := range b.copies[c] {
				if b.copies[c][i].Server == s {
					prot = append(prot, protItem{kind: protReplica, b: b, c: c, idx: uint64(i)})
				}
			}
		}
		if b.ec == nil {
			continue
		}
		for si := range b.ec.stripes {
			for m := range b.ec.stripes[si].parity {
				if b.ec.stripes[si].parity[m].server == s {
					prot = append(prot, protItem{kind: protParity, b: b, si: si, m: m})
				}
			}
		}
	}
	p.mu.Unlock()

	// p.buffers is a map: impose a stable order so serial repairs (and
	// their spans and placement decisions) replay deterministically.
	sort.Slice(prot, func(i, j int) bool {
		a, b := prot[i], prot[j]
		if a.b.rng.Start != b.b.rng.Start {
			return a.b.rng.Start < b.b.rng.Start
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.kind == protReplica {
			if a.c != b.c {
				return a.c < b.c
			}
			return a.idx < b.idx
		}
		if a.si != b.si {
			return a.si < b.si
		}
		return a.m < b.m
	})

	workers := p.repairWorkers()
	recovered, firstErr = p.runRepairPhase(len(prim), workers, func(i int) error {
		return p.repairPrimary(sc, prim[i])
	})
	// Sync point: every primary is live before protection rebuild reads
	// data shards.
	moved, protErr := p.runRepairPhase(len(prot), workers, func(i int) error {
		return p.repairProtection(sc, s, prot[i])
	})
	if protErr != nil && firstErr == nil {
		firstErr = protErr
	}
	p.metrics.Counter("pool.repair.protection_blocks").Add(uint64(moved))
	return recovered, firstErr
}

// runRepairPhase runs n independent repair items across a worker pool
// of the given width, reporting how many succeeded and the error of the
// lowest-indexed failure — so the surfaced error is the same under any
// worker interleaving.
func (p *Pool) runRepairPhase(n, workers int, run func(i int) error) (done int, firstErr error) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			done++
		}
		return done, firstErr
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = n
	)
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			err := run(i)
			mu.Lock()
			if err != nil {
				if i < errIdx {
					errIdx = i
					firstErr = err
				}
			} else {
				done++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return done, firstErr
}

// repairPrimary rebuilds one dead-owned primary slice under its
// commit-window lock.
func (p *Pool) repairPrimary(sc telemetry.SpanContext, it repairItem) error {
	sp, traced := p.beginChild(sc, "pool.repair.slice")
	it.back.commit.Lock()
	err := p.repairSliceCommitted(it.slice, it.back)
	it.back.commit.Unlock()
	if traced {
		p.endChild(&sp, int(SliceSize), err)
	}
	return err
}

// repairProtection re-homes one protection block under a child span.
func (p *Pool) repairProtection(sc telemetry.SpanContext, deadSrv addr.ServerID, it protItem) error {
	sp, traced := p.beginChild(sc, "pool.repair.protection")
	var err error
	if it.kind == protReplica {
		err = p.repairReplica(deadSrv, it.b, it.c, it.idx)
	} else {
		err = p.repairParity(deadSrv, it.b, it.si, it.m)
	}
	if traced {
		p.endChild(&sp, int(SliceSize), err)
	}
	return err
}

// repairSliceCommitted rebuilds slice s, whose owner crashed, onto a
// live server. The caller holds back's commit-window lock; every other
// mover serializes behind it, and foreground writers to the dead-owned
// slice are parked inside recoverSliceInner on the same lock, so the
// slice's surviving replica bytes are frozen for the duration. Shard
// reads, reconstruction, and the bulk write all run with no pool lock
// held; only the plan and the final rebind take p.mu (plus the stripe
// lock for the rebind).
//
//lmp:commitwindow
func (p *Pool) repairSliceCommitted(s uint64, back *sliceBacking) error {
	p.mu.Lock()
	if p.lookupSlice(s) != back {
		p.mu.Unlock()
		return nil // released or re-mapped while we waited for the commit lock
	}
	deadSrv := back.server
	if !p.isDead(deadSrv) {
		p.mu.Unlock()
		return nil // another mover already recovered it
	}
	b := back.buf
	if b == nil || b.prot.Scheme == failure.None {
		p.mu.Unlock()
		return &failure.MemoryException{Addr: addr.SliceBase(s), Server: deadSrv}
	}
	idx := s - b.firstSlice()
	dstSrv, dstOff, err := p.allocAvoiding(p.protectionServersLocked(b, idx))
	if err != nil {
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()

	// Barrier: drain any writer that took the stripe lock before the
	// crash was observed. New writers cannot start — a write to a
	// dead-owned slice recovers it first and parks on our commit lock —
	// so after this acquire/release the slice is frozen.
	lock := p.stripeFor(s)
	lock.Lock()
	lock.Unlock() //nolint:staticcheck // empty critical section is the barrier

	scratch := getSliceBuf()
	data := (*scratch)[:SliceSize]
	switch b.prot.Scheme {
	case failure.Replicate:
		err = p.readSurvivingReplica(b, s, idx, back, deadSrv, data)
	case failure.ErasureCode:
		err = p.reconstructEC(b, idx, data)
	}
	if err == nil {
		err = p.nodes[dstSrv].WriteAt(data, dstOff)
	}
	putSliceBuf(scratch)
	if err != nil {
		p.mu.Lock()
		p.freeBackingLocked(dstSrv, dstOff)
		p.mu.Unlock()
		if errors.Is(err, errMoveStale) {
			return nil // the slice was released mid-rebuild: nothing to repair
		}
		return err
	}

	// Commit window: re-validate and rebind. Nothing else can have moved
	// the slice (we hold its commit lock), but Release may have freed it.
	p.mu.Lock()
	lock.Lock()
	if p.lookupSlice(s) != back || back.server != deadSrv {
		lock.Unlock()
		p.freeBackingLocked(dstSrv, dstOff)
		p.mu.Unlock()
		return nil
	}
	err = p.rebindLocked(s, back, dstSrv, dstOff)
	lock.Unlock()
	if err != nil {
		p.freeBackingLocked(dstSrv, dstOff)
		p.mu.Unlock()
		return err
	}
	p.metrics.Counter("pool.recoveries").Inc()
	p.mu.Unlock()
	return nil
}

// rebindLocked points slice s at (dstSrv, dstOff): both translation
// steps, the backing record, the old extent's free (skipped when the
// old owner is dead — its memory is gone), and the new owner's cache
// invalidation. The caller holds p.mu and the slice's stripe lock in
// write mode. For erasure-coded buffers the swap additionally holds the
// buffer's EC lock: reconstruction snapshots sibling backing fields and
// bytes under ec.mu alone, so field mutation and the extent free must
// be ordered against it.
func (p *Pool) rebindLocked(s uint64, back *sliceBacking, dstSrv addr.ServerID, dstOff int64) error {
	var ecmu *sync.Mutex
	if back.buf != nil && back.buf.ec != nil {
		ecmu = &back.buf.ec.mu
		ecmu.Lock()
	}
	oldSrv, oldOff := back.server, back.offset
	p.locals[dstSrv].MapSlice(s, dstOff)
	if err := p.global.Bind(addr.Range{Start: addr.SliceBase(s), Size: SliceSize}, dstSrv); err != nil {
		p.locals[dstSrv].UnmapSlice(s)
		if ecmu != nil {
			ecmu.Unlock()
		}
		return err
	}
	p.locals[oldSrv].UnmapSlice(s)
	back.server = dstSrv
	back.offset = dstOff
	p.freeBackingLocked(oldSrv, oldOff)
	if ecmu != nil {
		ecmu.Unlock()
	}
	if p.caches != nil {
		// The slice is local to its new owner now; drop the owner's cached
		// copies so its reads hit backing DRAM directly (local pages are
		// never cached). Other nodes' copies stay valid — the bytes did
		// not change, only their home.
		base := uint64(addr.SliceBase(s))
		p.caches[dstSrv].InvalidateRange(base>>p.pageShift, uint64(SliceSize)>>p.pageShift)
	}
	return nil
}

// readSurvivingReplica copies slice s's bytes from the first live
// replica into out. The caller holds the slice's commit lock with the
// owner dead, so writers are parked and the replica bytes frozen; the
// chunked stripe read locks order the reads against structural
// relocation of the replica blocks (compaction) without stalling
// concurrent readers of other slices in the stripe. Each chunk
// re-validates the backing: Release unpublishes the slice under the
// stripe lock before freeing its replicas, so a stale lookup aborts the
// read before it can touch a freed (possibly re-allocated) extent.
func (p *Pool) readSurvivingReplica(b *Buffer, s, idx uint64, back *sliceBacking, deadSrv addr.ServerID, out []byte) error {
	lock := p.stripeFor(s)
	for c := range b.copies {
		live := true
		for off := int64(0); off < SliceSize && live; off += moveChunk {
			n := int64(moveChunk)
			if SliceSize-off < n {
				n = SliceSize - off
			}
			lock.RLock()
			if p.lookupSlice(s) != back {
				lock.RUnlock()
				return fmt.Errorf("%w: slice %d", errMoveStale, s)
			}
			cp := b.copies[c][idx]
			if p.isDead(cp.Server) {
				live = false
			} else if err := p.nodes[cp.Server].ReadAt(out[off:off+n], cp.Offset+off); err != nil {
				lock.RUnlock()
				return err
			}
			lock.RUnlock()
		}
		if live {
			p.fabricDelay()
			return nil
		}
	}
	return &failure.MemoryException{Addr: addr.SliceBase(s), Server: deadSrv}
}

// reconstructEC rebuilds buffer slice idx from its stripe's survivors
// into out. The survivor snapshot is read under the buffer's EC lock —
// every EC shard mutation (data write + parity delta) runs under it, so
// one hold yields a consistent stripe cut, and the erased shard's
// solution is invariant across cuts (sibling writes move sibling and
// parity together, never the solution). The O(K·SliceSize) decode runs
// after release on pooled scratch.
func (p *Pool) reconstructEC(b *Buffer, idx uint64, out []byte) error {
	k := uint64(b.prot.K)
	st := &b.ec.stripes[idx/k]
	total := b.prot.K + b.prot.M
	shards := make([][]byte, total)
	held := make([]*[]byte, 0, total)
	defer func() {
		for _, sb := range held {
			putSliceBuf(sb)
		}
	}()
	first := b.firstSlice()
	nSlices := b.sliceCount()
	reads := 0
	b.ec.mu.Lock()
	for j := 0; j < b.prot.K; j++ {
		slIdx := st.firstIdx + uint64(j)
		if slIdx == idx {
			continue // the erased shard we are solving for
		}
		if slIdx >= nSlices {
			// Virtual zero shard beyond the buffer's end.
			sb := getSliceBuf()
			held = append(held, sb)
			z := (*sb)[:SliceSize]
			clear(z)
			shards[j] = z
			continue
		}
		sib := p.lookupSlice(first + slIdx)
		if sib == nil || p.isDead(sib.server) {
			continue // erased
		}
		sb := getSliceBuf()
		held = append(held, sb)
		buf := (*sb)[:SliceSize]
		if err := p.nodes[sib.server].ReadAt(buf, sib.offset); err != nil {
			b.ec.mu.Unlock()
			return err
		}
		shards[j] = buf
		reads++
	}
	for m, pb := range st.parity {
		if p.isDead(pb.server) {
			continue
		}
		sb := getSliceBuf()
		held = append(held, sb)
		buf := (*sb)[:SliceSize]
		if err := p.nodes[pb.server].ReadAt(buf, pb.offset); err != nil {
			b.ec.mu.Unlock()
			return err
		}
		shards[b.prot.K+m] = buf
		reads++
	}
	b.ec.mu.Unlock()
	// Fabric cost of the survivor reads, charged outside every lock so
	// parallel workers overlap their transfers.
	for i := 0; i < reads; i++ {
		p.fabricDelay()
	}
	outRow := make([][]byte, b.prot.K)
	outRow[idx-st.firstIdx] = out
	if err := b.ec.rs.ReconstructInto(shards, outRow); err != nil {
		return fmt.Errorf("core: reconstruct slice %d: %w", idx, err)
	}
	return nil
}

// replicaSourceLocked picks a live source for replica copy c of buffer
// slice idx: the primary if alive, else any live sibling copy. The
// caller holds the slice's stripe lock (either mode), which is what
// keeps the returned location valid to read.
func (p *Pool) replicaSourceLocked(b *Buffer, back *sliceBacking, c int, idx uint64) (addr.ServerID, int64, bool) {
	if !p.isDead(back.server) {
		return back.server, back.offset, true
	}
	for c2, cp := range b.copies {
		if c2 == c || p.isDead(cp[idx].Server) {
			continue
		}
		return cp[idx].Server, cp[idx].Offset, true
	}
	return 0, 0, false
}

// repairReplica re-homes replica copy c of buffer slice idx from a live
// source. It holds the protected slice's commit lock so no other mover
// re-homes the primary mid-copy; the primary stays fully writable — the
// dirty interval tracks writes during the bulk copy and the commit
// window re-copies just that delta.
//
//lmp:commitwindow
func (p *Pool) repairReplica(deadSrv addr.ServerID, b *Buffer, c int, idx uint64) error {
	sl := b.firstSlice() + idx
	back := p.lookupSlice(sl)
	if back == nil {
		return nil // buffer released since the snapshot
	}
	back.commit.Lock()
	defer back.commit.Unlock()

	p.mu.Lock()
	if b.released.Load() || p.lookupSlice(sl) != back ||
		b.copies[c][idx].Server != deadSrv || !p.isDead(deadSrv) {
		p.mu.Unlock()
		return nil
	}
	avoid := p.protectionServersLocked(b, idx)
	avoid[back.server] = true
	srv, off, err := p.allocAvoiding(avoid)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()

	lock := p.stripeFor(sl)
	lock.Lock()
	if p.lookupSlice(sl) != back {
		lock.Unlock()
		p.mu.Lock()
		p.freeBackingLocked(srv, off)
		p.mu.Unlock()
		return nil
	}
	back.startTrackingLocked()
	lock.Unlock()

	scratch := getSliceBuf()
	defer putSliceBuf(scratch)
	copyErr := func() error {
		buf := (*scratch)[:moveChunk]
		for off2 := int64(0); off2 < SliceSize; off2 += moveChunk {
			n := int64(moveChunk)
			if SliceSize-off2 < n {
				n = SliceSize - off2
			}
			lock.RLock()
			if p.lookupSlice(sl) != back {
				lock.RUnlock()
				return fmt.Errorf("%w: slice %d", errMoveStale, sl)
			}
			srcSrv, srcOff, ok := p.replicaSourceLocked(b, back, c, idx)
			if !ok {
				lock.RUnlock()
				return &failure.MemoryException{Addr: addr.SliceBase(sl), Server: deadSrv}
			}
			err := p.nodes[srcSrv].ReadAt(buf[:n], srcOff+off2)
			lock.RUnlock()
			if err != nil {
				return err
			}
			if err := p.nodes[srv].WriteAt(buf[:n], off+off2); err != nil {
				return err
			}
		}
		return nil
	}()
	p.fabricDelay()

	abort := func(err error) error {
		lock.Lock()
		back.stopTrackingLocked()
		lock.Unlock()
		p.mu.Lock()
		p.freeBackingLocked(srv, off)
		p.mu.Unlock()
		return err
	}
	if copyErr != nil {
		if errors.Is(copyErr, errMoveStale) {
			return abort(nil) // buffer released mid-copy: nothing to re-home
		}
		return abort(copyErr)
	}

	p.mu.Lock()
	lock.Lock()
	if b.released.Load() || p.lookupSlice(sl) != back || b.copies[c][idx].Server != deadSrv {
		back.stopTrackingLocked()
		lock.Unlock()
		p.freeBackingLocked(srv, off)
		p.mu.Unlock()
		return nil
	}
	if lo, hi := back.dirtyRangeLocked(); hi > lo {
		delta := (*scratch)[:hi-lo]
		srcSrv, srcOff, ok := p.replicaSourceLocked(b, back, c, idx)
		if !ok {
			err = &failure.MemoryException{Addr: addr.SliceBase(sl), Server: deadSrv}
		} else if err = p.nodes[srcSrv].ReadAt(delta, srcOff+lo); err == nil {
			err = p.nodes[srv].WriteAt(delta, off+lo)
		}
		if err != nil {
			back.stopTrackingLocked()
			lock.Unlock()
			p.freeBackingLocked(srv, off)
			p.mu.Unlock()
			return err
		}
		p.metrics.Counter("pool.migrations.commit_bytes").Add(uint64(hi - lo))
	}
	b.copies[c][idx] = alloc.Chunk{Server: srv, Offset: off, Size: SliceSize}
	back.stopTrackingLocked()
	lock.Unlock()
	p.mu.Unlock()
	return nil
}

// repairParity recomputes parity row m of EC stripe si onto a live
// server. It runs in repair phase B, after every data shard is live.
// The shard snapshot and the stripe's version are read under ec.mu; the
// O(K·SliceSize) row compute and the bulk write run unlocked; the swap
// re-checks the version, so a foreground write that changed the stripe
// between snapshot and swap forces a re-read instead of committing a
// stale row. After repeated collisions it falls back to computing the
// row with the stripe frozen, which is the pre-engine behavior.
func (p *Pool) repairParity(deadSrv addr.ServerID, b *Buffer, si, m int) error {
	st := &b.ec.stripes[si]
	first := b.firstSlice()
	k := b.prot.K

	p.mu.Lock()
	if b.released.Load() || st.parity[m].server != deadSrv || !p.isDead(deadSrv) {
		p.mu.Unlock()
		return nil
	}
	avoid := make(map[addr.ServerID]bool)
	for j := 0; j < k; j++ {
		slIdx := st.firstIdx + uint64(j)
		if slIdx >= b.sliceCount() {
			continue
		}
		if back := p.lookupSlice(first + slIdx); back != nil {
			avoid[back.server] = true
		}
	}
	for _, pb := range st.parity {
		avoid[pb.server] = true
	}
	srv, off, err := p.allocAvoiding(avoid)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()

	rowBuf := getSliceBuf()
	defer putSliceBuf(rowBuf)
	row := (*rowBuf)[:SliceSize]
	held := make([]*[]byte, 0, k)
	defer func() {
		for _, sb := range held {
			putSliceBuf(sb)
		}
	}()
	shards := make([][]byte, k)
	for j := range shards {
		sb := getSliceBuf()
		held = append(held, sb)
		shards[j] = (*sb)[:SliceSize]
	}
	parityOut := make([][]byte, b.prot.M)
	parityOut[m] = row

	abort := func(err error) error {
		p.mu.Lock()
		p.freeBackingLocked(srv, off)
		p.mu.Unlock()
		return err
	}

	for attempt := 0; ; attempt++ {
		// After enough optimistic losses to a steady writer, freeze the
		// stripe for one bounded pass instead of retrying forever.
		freeze := attempt >= 8
		if freeze {
			p.mu.Lock()
		}
		b.ec.mu.Lock()
		v := st.version
		reads := 0
		var readErr error
		for j := 0; j < k; j++ {
			slIdx := st.firstIdx + uint64(j)
			if slIdx >= b.sliceCount() {
				clear(shards[j]) // virtual zero shard
				continue
			}
			back := p.lookupSlice(first + slIdx)
			if back == nil || p.isDead(back.server) {
				readErr = fmt.Errorf("%w: parity rebuild needs data slice %d", ErrServerDead, slIdx)
				break
			}
			if readErr = p.nodes[back.server].ReadAt(shards[j], back.offset); readErr != nil {
				break
			}
			reads++
		}
		if readErr != nil {
			b.ec.mu.Unlock()
			if freeze {
				p.mu.Unlock()
			}
			return abort(readErr)
		}
		if freeze {
			// Stripe frozen: compute, write, and swap under the locks.
			err := b.ec.rs.EncodeInto(shards, parityOut)
			if err == nil {
				err = p.nodes[srv].WriteAt(row, off)
			}
			if err == nil && st.parity[m].server == deadSrv {
				st.parity[m] = parityBlock{server: srv, offset: off}
				b.ec.mu.Unlock()
				p.mu.Unlock()
				return nil
			}
			b.ec.mu.Unlock()
			p.freeBackingLocked(srv, off)
			p.mu.Unlock()
			return err
		}
		b.ec.mu.Unlock()
		for i := 0; i < reads; i++ {
			p.fabricDelay()
		}
		if err := b.ec.rs.EncodeInto(shards, parityOut); err != nil {
			return abort(err)
		}
		if err := p.nodes[srv].WriteAt(row, off); err != nil {
			return abort(err)
		}
		p.mu.Lock()
		b.ec.mu.Lock()
		if st.parity[m].server != deadSrv {
			b.ec.mu.Unlock()
			p.freeBackingLocked(srv, off)
			p.mu.Unlock()
			return nil // another mover already re-homed the row
		}
		if st.version == v {
			st.parity[m] = parityBlock{server: srv, offset: off}
			b.ec.mu.Unlock()
			p.mu.Unlock()
			return nil
		}
		b.ec.mu.Unlock()
		p.mu.Unlock()
		// The stripe changed under the optimistic snapshot: go again.
	}
}

// moveOneCommitted migrates slice s (backing back) to server to. The
// caller holds back's commit-window lock. Two-phase protocol:
//
//	plan      p.mu               validate, collocation check, reserve dst
//	track     stripe.Lock, O(1)  arm the dirty interval
//	pre-copy  chunked RLock      bulk copy; reads and writes proceed
//	commit    p.mu + stripe      copy the dirty delta, rebind, free old
//
// so the stripe write-lock hold shrinks from O(SliceSize + 2 RPCs) to
// O(dirty delta). With cfg.Repair.Serialized the pre-copy phase
// disappears and the whole copy runs inside the write locks — the
// measured baseline.
//
//lmp:commitwindow
func (p *Pool) moveOneCommitted(sc telemetry.SpanContext, s uint64, back *sliceBacking, to addr.ServerID) error {
	p.mu.Lock()
	if p.lookupSlice(s) != back {
		p.mu.Unlock()
		return fmt.Errorf("%w: slice %d", errMoveStale, s)
	}
	if p.isDead(back.server) {
		p.mu.Unlock()
		return fmt.Errorf("%w: slice %d owner", ErrServerDead, s)
	}
	if p.isDead(to) {
		p.mu.Unlock()
		return fmt.Errorf("%w: server %d", ErrServerDead, to)
	}
	if back.server == to {
		p.mu.Unlock()
		return nil
	}
	if back.buf != nil {
		if avoid := p.protectionServersLocked(back.buf, s-back.buf.firstSlice()); avoid[to] {
			p.mu.Unlock()
			return fmt.Errorf("%w: slice %d to server %d", errCollocate, s, to)
		}
	}
	newOff, err := p.regions[to].Alloc(SliceSize)
	if err != nil {
		p.mu.Unlock()
		return fmt.Errorf("core: migrate slice %d to %d: %w", s, to, err)
	}
	p.mu.Unlock()

	if p.cfg.Repair.Serialized {
		return p.moveSerialized(s, back, to, newOff)
	}

	lock := p.stripeFor(s)
	lock.Lock()
	if p.lookupSlice(s) != back || p.isDead(back.server) {
		lock.Unlock()
		p.mu.Lock()
		p.freeBackingLocked(to, newOff)
		p.mu.Unlock()
		return fmt.Errorf("%w: slice %d", errMoveStale, s)
	}
	back.startTrackingLocked()
	lock.Unlock()

	sp, traced := p.beginChild(sc, "pool.migrate.precopy")
	err = p.preCopySlice(back, s, to, newOff)
	p.fabricDelay()
	if traced {
		p.endChild(&sp, int(SliceSize), err)
	}
	if err != nil {
		lock.Lock()
		back.stopTrackingLocked()
		lock.Unlock()
		p.mu.Lock()
		p.freeBackingLocked(to, newOff)
		p.mu.Unlock()
		return err
	}

	csp, ctraced := p.beginChild(sc, "pool.migrate.commit")
	delta, err := p.commitMove(s, back, to, newOff)
	if ctraced {
		p.endChild(&csp, int(delta), err)
	}
	return err
}

// preCopySlice bulk-copies slice s to (to, newOff) in chunks, each read
// under its own short stripe read-lock hold: concurrent reads share the
// lock, concurrent writes interleave between chunks and land in the
// dirty interval. The backing is re-validated under every chunk's lock
// so a concurrent release or crash aborts the copy instead of reading
// through a freed (possibly re-allocated) extent.
func (p *Pool) preCopySlice(back *sliceBacking, s uint64, to addr.ServerID, newOff int64) error {
	lock := p.stripeFor(s)
	scratch := getSliceBuf()
	defer putSliceBuf(scratch)
	buf := (*scratch)[:moveChunk]
	for off := int64(0); off < SliceSize; off += moveChunk {
		n := int64(moveChunk)
		if SliceSize-off < n {
			n = SliceSize - off
		}
		lock.RLock()
		if p.lookupSlice(s) != back || p.isDead(back.server) {
			lock.RUnlock()
			return fmt.Errorf("%w: slice %d", errMoveStale, s)
		}
		err := p.nodes[back.server].ReadAt(buf[:n], back.offset+off)
		lock.RUnlock()
		if err != nil {
			return err
		}
		if err := p.nodes[to].WriteAt(buf[:n], newOff+off); err != nil {
			return err
		}
	}
	return nil
}

// commitMove is the migration commit window: re-validate, copy the
// dirty delta, rebind, free the old extent. Returns the delta size.
//
//lmp:commitwindow
func (p *Pool) commitMove(s uint64, back *sliceBacking, to addr.ServerID, newOff int64) (int64, error) {
	lock := p.stripeFor(s)
	scratch := getSliceBuf()
	defer putSliceBuf(scratch)
	p.mu.Lock()
	lock.Lock()
	abort := func(err error) (int64, error) {
		back.stopTrackingLocked()
		lock.Unlock()
		p.freeBackingLocked(to, newOff)
		p.mu.Unlock()
		return 0, err
	}
	if p.lookupSlice(s) != back || p.isDead(back.server) || p.isDead(to) {
		return abort(fmt.Errorf("%w: slice %d", errMoveStale, s))
	}
	lo, hi := back.dirtyRangeLocked()
	var delta int64
	if hi > lo {
		delta = hi - lo
		buf := (*scratch)[:delta]
		if err := p.nodes[back.server].ReadAt(buf, back.offset+lo); err != nil {
			return abort(err)
		}
		if err := p.nodes[to].WriteAt(buf, newOff+lo); err != nil {
			return abort(err)
		}
	}
	if err := p.rebindLocked(s, back, to, newOff); err != nil {
		return abort(err)
	}
	back.stopTrackingLocked()
	lock.Unlock()
	p.metrics.Counter("pool.migrations.commit_bytes").Add(uint64(delta))
	p.mu.Unlock()
	return delta, nil
}

// moveSerialized is the measured baseline: the whole copy inside the
// structural and stripe write locks, as the pre-engine migration did,
// so foreground access to the slice stalls for the full transfer.
//
//lmp:commitwindow
func (p *Pool) moveSerialized(s uint64, back *sliceBacking, to addr.ServerID, newOff int64) error {
	scratch := getSliceBuf()
	defer putSliceBuf(scratch)
	buf := (*scratch)[:SliceSize]
	lock := p.stripeFor(s)
	p.mu.Lock()
	lock.Lock()
	abort := func(err error) error {
		lock.Unlock()
		p.freeBackingLocked(to, newOff)
		p.mu.Unlock()
		return err
	}
	if p.lookupSlice(s) != back || p.isDead(back.server) || p.isDead(to) {
		return abort(fmt.Errorf("%w: slice %d", errMoveStale, s))
	}
	if err := p.nodes[back.server].ReadAt(buf, back.offset); err != nil {
		return abort(err)
	}
	p.fabricDelay() // the transfer cost lands inside the lock: that is the baseline
	if err := p.nodes[to].WriteAt(buf, newOff); err != nil {
		return abort(err)
	}
	if err := p.rebindLocked(s, back, to, newOff); err != nil {
		return abort(err)
	}
	lock.Unlock()
	p.mu.Unlock()
	return nil
}
