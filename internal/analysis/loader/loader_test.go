package loader

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a small multi-package module in a temp dir:
//
//	example.com/m/b          — leaf package
//	example.com/m/a          — imports b; has an in-package test file
//	example.com/m/a (xtest)  — external test package a_test
//	example.com/m/testdata/p — fixture-shaped package, never a target
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.24\n",
		"b/b.go": "package b\n\nfunc B() int { return 2 }\n",
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nfunc A() int { return b.B() }\n",
		"a/a_test.go": "package a\n\nimport \"testing\"\n\n" +
			"func hidden() int { return A() }\n\n" +
			"func TestHidden(t *testing.T) {\n\tif hidden() != 2 {\n\t\tt.Fail()\n\t}\n}\n",
		"a/x_test.go": "package a_test\n\n" +
			"import (\n\t\"testing\"\n\n\t\"example.com/m/a\"\n)\n\n" +
			"func TestA(t *testing.T) {\n\tif a.A() != 2 {\n\t\tt.Fail()\n\t}\n}\n",
		"testdata/p/p.go": "package p\n\nfunc P() {}\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadMultiPackageModule(t *testing.T) {
	dir := writeModule(t)
	units, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]int{} // pkg path → file count
	for _, u := range units {
		byPath[u.PkgPath] = len(u.Files)
	}
	// a.go + a_test.go merge into one unit; the external test package is
	// its own unit; the testdata fixture never appears.
	want := map[string]int{
		"example.com/m/a":      2,
		"example.com/m/a_test": 1,
		"example.com/m/b":      1,
	}
	if len(byPath) != len(want) {
		t.Fatalf("units = %v, want %v", byPath, want)
	}
	for path, files := range want {
		if byPath[path] != files {
			t.Errorf("%s: %d files, want %d", path, byPath[path], files)
		}
	}
	// Type info resolved across units: a.A's body references b.B through
	// export data and hidden() from the merged test file.
	for _, u := range units {
		if u.Types == nil || u.Info == nil {
			t.Errorf("%s: missing type information", u.PkgPath)
		}
	}
}

func TestLoadSkipsTestdataTarget(t *testing.T) {
	dir := writeModule(t)
	// Even named explicitly, a package under testdata is not a target.
	units, err := Load(dir, "./testdata/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 0 {
		t.Fatalf("testdata package loaded as target: %v", units)
	}
}

func TestFetchExport(t *testing.T) {
	dir := writeModule(t)
	path, err := fetchExport(dir, "example.com/m/b")
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("export file %q: stat %v", path, err)
	}
	if _, err := fetchExport(dir, "example.com/m/nonexistent"); err == nil {
		t.Fatal("fetchExport succeeded for a nonexistent package")
	}
}

func TestCorruptedExportData(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "b.a")
	if err := os.WriteFile(garbage, []byte("this is not gc export data"), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	const src = "package c\n\nimport \"example.com/m/b\"\n\nvar _ = b.B\n"
	f, err := parser.ParseFile(fset, "c.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	imp := importer.ForCompiler(fset, "gc", func(string) (io.ReadCloser, error) {
		return os.Open(garbage)
	})
	_, err = typeCheck(fset, "example.com/m/c", []*ast.File{f}, imp)
	if err == nil {
		t.Fatal("typeCheck accepted corrupted export data")
	}
	//lint:ignore sentinelerr the test asserts the diagnostic names the failing package — message wording is the contract under test
	if !strings.Contains(err.Error(), "example.com/m/c") {
		t.Errorf("error does not name the package: %v", err)
	}
}
