package memsim

import "fmt"

// SoftwarePaging models software memory disaggregation (§2.1): far memory
// reached through page faults and explicit I/O (swap over RDMA, as in
// CFM/Infiniswap, or runtime libraries like AIFM). Every miss pays a
// software fault/IO-completion overhead on top of moving a whole page,
// which is what makes it "slow and poorly aligned with CPU architectural
// features" compared to CXL loads and stores.
type SoftwarePaging struct {
	// PageBytes is the transfer granularity (4KiB swap pages).
	PageBytes int64
	// FaultOverheadNS is the software cost per miss: fault entry, RDMA
	// post, completion polling, page-table fixup.
	FaultOverheadNS float64
	// Net is the network the pages travel over.
	Net Profile
}

// RDMASwap is a calibrated software-disaggregation point: 4KiB pages over
// a 100Gb/s RDMA fabric with ~3µs of kernel/runtime overhead per fault
// (the order reported by the far-memory systems the paper cites).
func RDMASwap() SoftwarePaging {
	return SoftwarePaging{
		PageBytes:       4096,
		FaultOverheadNS: 3000,
		Net: Profile{
			Name:      "RDMA 100Gb/s",
			Latency:   LatencyCurve{MinNS: 1500, MaxNS: 5000},
			Bandwidth: 12.5e9,
		},
	}
}

// Validate checks the configuration.
func (s SoftwarePaging) Validate() error {
	if s.PageBytes <= 0 {
		return fmt.Errorf("memsim: page bytes %d", s.PageBytes)
	}
	if s.FaultOverheadNS < 0 {
		return fmt.Errorf("memsim: negative fault overhead")
	}
	if s.Net.Bandwidth <= 0 {
		return fmt.Errorf("memsim: paging network needs bandwidth")
	}
	return nil
}

// MissLatencyNS reports the time to service one page miss: software
// overhead + network latency + page transfer.
func (s SoftwarePaging) MissLatencyNS() float64 {
	transfer := float64(s.PageBytes) / s.Net.Bandwidth * 1e9
	return s.FaultOverheadNS + s.Net.Latency.MinNS + transfer
}

// SequentialBandwidth reports the achievable far-memory bandwidth of a
// sequential scan: every byte of a page is used, but each page still pays
// the fault overhead (prefetching hides latency, not CPU cost).
func (s SoftwarePaging) SequentialBandwidth() float64 {
	perPage := s.FaultOverheadNS + float64(s.PageBytes)/s.Net.Bandwidth*1e9
	return float64(s.PageBytes) / (perPage * 1e-9)
}

// RandomBandwidth reports the useful bandwidth when accesses touch only
// accessBytes per faulted page (the pointer-chasing case): the whole page
// moves, a few bytes are used.
func (s SoftwarePaging) RandomBandwidth(accessBytes int) float64 {
	if accessBytes <= 0 {
		return 0
	}
	return float64(accessBytes) / (s.MissLatencyNS() * 1e-9)
}

// HardwareRandomBandwidth is the CXL counterpart for the same access
// pattern: a load moves one cache line at load latency, with the CPU's
// MLP overlapping misses.
func HardwareRandomBandwidth(p Profile, core CoreProfile, accessBytes int) float64 {
	if accessBytes <= 0 {
		return 0
	}
	if accessBytes > core.LineBytes {
		accessBytes = core.LineBytes
	}
	// MLP concurrent misses, each completing in the idle latency.
	return float64(core.MLP) * float64(accessBytes) / (p.Latency.MinNS * 1e-9)
}

// DisaggregationComparison summarizes §2.1's motivation quantitatively.
type DisaggregationComparison struct {
	HardwareSeqBps  float64
	SoftwareSeqBps  float64
	HardwareRandBps float64
	SoftwareRandBps float64
}

// CompareDisaggregation evaluates hardware (CXL link profile) against
// software (paging) disaggregation for sequential scans and 64-byte
// random accesses.
func CompareDisaggregation(hw Profile, core CoreProfile, sw SoftwarePaging) (DisaggregationComparison, error) {
	if err := sw.Validate(); err != nil {
		return DisaggregationComparison{}, err
	}
	return DisaggregationComparison{
		HardwareSeqBps:  hw.Bandwidth,
		SoftwareSeqBps:  sw.SequentialBandwidth(),
		HardwareRandBps: HardwareRandomBandwidth(hw, core, 64),
		SoftwareRandBps: sw.RandomBandwidth(64),
	}, nil
}
