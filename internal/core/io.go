package core

import (
	"fmt"
	"io"

	"github.com/lmp-project/lmp/internal/addr"
)

// ReaderAt returns an io.ReaderAt view of the buffer with accesses
// issued by server from, for composing pool memory with the standard
// library (io.SectionReader, io.Copy, archive readers, ...). Reads past
// the buffer's end return io.EOF after the available bytes; reads of a
// released buffer fail with ErrReleased.
func (b *Buffer) ReaderAt(from addr.ServerID) io.ReaderAt {
	return bufferReaderAt{b: b, from: from}
}

// WriterAt returns an io.WriterAt view of the buffer with accesses
// issued by server from. Writes that would cross the buffer's end fail
// with a bounds error without writing anything; writes to a released
// buffer fail with ErrReleased.
func (b *Buffer) WriterAt(from addr.ServerID) io.WriterAt {
	return bufferWriterAt{b: b, from: from}
}

type bufferReaderAt struct {
	b    *Buffer
	from addr.ServerID
}

func (r bufferReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: read at negative offset %d", off)
	}
	if off >= r.b.size {
		return 0, io.EOF
	}
	n := len(p)
	if max := r.b.size - off; int64(n) > max {
		n = int(max)
	}
	if err := r.b.ReadAt(r.from, p[:n], off); err != nil {
		return 0, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

type bufferWriterAt struct {
	b    *Buffer
	from addr.ServerID
}

func (w bufferWriterAt) WriteAt(p []byte, off int64) (int, error) {
	if err := w.b.WriteAt(w.from, p, off); err != nil {
		return 0, err
	}
	return len(p), nil
}
