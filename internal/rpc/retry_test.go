package rpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestSentinelContract locks the error classification clients rely on:
// handler errors wrapping a transport sentinel must reach the caller
// errors.Is-compatible, never as a raw string, and a locally dead-marked
// peer must fail fast with ErrServerDead.
func TestSentinelContract(t *testing.T) {
	const (
		methDead      = 10
		methTransient = 11
		methPlain     = 12
	)
	s := NewServer()
	s.Handle(methDead, func(p []byte) ([]byte, error) {
		return nil, fmt.Errorf("server 3 owns slice 7: %w", ErrServerDead)
	})
	s.Handle(methTransient, func(p []byte) ([]byte, error) {
		return nil, fmt.Errorf("link glitch: %w", ErrTransient)
	})
	s.Handle(methPlain, func(p []byte) ([]byte, error) {
		return nil, errors.New("plain failure")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	cases := []struct {
		name          string
		call          func(c *Client) error
		wantDead      bool
		wantTransient bool
		wantRemote    bool
		wantMsg       string
	}{
		{
			name:       "handler wraps ErrServerDead",
			call:       func(c *Client) error { _, err := c.Call(methDead, nil); return err },
			wantDead:   true,
			wantRemote: true,
			wantMsg:    "server 3 owns slice 7",
		},
		{
			name:          "handler wraps ErrTransient",
			call:          func(c *Client) error { _, err := c.Call(methTransient, nil); return err },
			wantTransient: true,
			wantRemote:    true,
			wantMsg:       "link glitch",
		},
		{
			name:       "plain handler error stays generic",
			call:       func(c *Client) error { _, err := c.Call(methPlain, nil); return err },
			wantRemote: true,
			wantMsg:    "plain failure",
		},
		{
			name: "locally marked dead fails fast",
			call: func(c *Client) error {
				c.MarkDead()
				_, err := c.Call(methPlain, nil)
				return err
			},
			wantDead: true,
		},
		{
			name: "unmark dead restores service",
			call: func(c *Client) error {
				c.MarkDead()
				c.UnmarkDead()
				_, err := c.Call(methPlain, nil)
				return err
			},
			wantRemote: true,
			wantMsg:    "plain failure",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			err = tc.call(c)
			if err == nil {
				t.Fatal("call unexpectedly succeeded")
			}
			if got := errors.Is(err, ErrServerDead); got != tc.wantDead {
				t.Errorf("errors.Is(err, ErrServerDead) = %v, want %v (err: %v)", got, tc.wantDead, err)
			}
			if got := errors.Is(err, ErrTransient); got != tc.wantTransient {
				t.Errorf("errors.Is(err, ErrTransient) = %v, want %v (err: %v)", got, tc.wantTransient, err)
			}
			var re *RemoteError
			if got := errors.As(err, &re); got != tc.wantRemote {
				t.Errorf("errors.As(err, *RemoteError) = %v, want %v (err: %v)", got, tc.wantRemote, err)
			}
			//lint:ignore sentinelerr the contract under test includes the handler message surviving the wire
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q lost the handler message %q", err, tc.wantMsg)
			}
		})
	}
}

func TestMarkDeadFailsInflightCalls(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Handle(1, func(p []byte) ([]byte, error) {
		<-block
		return p, nil
	})
	defer close(block)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(1, []byte("x"))
		done <- err
	}()
	// Wait until the call is pending, then declare the peer dead.
	for c.Stats().Pending == 0 {
		time.Sleep(time.Millisecond)
	}
	c.MarkDead()
	if err := <-done; !errors.Is(err, ErrServerDead) {
		t.Fatalf("in-flight call after MarkDead: %v", err)
	}
}

// flakyCaller fails the first n calls with wrapped ErrTransient.
type flakyCaller struct {
	failures int
	calls    int
	deadErr  error
}

func (f *flakyCaller) Call(method byte, payload []byte) ([]byte, error) {
	return f.CallCtx(nil, method, payload)
}

func (f *flakyCaller) CallCtx(_ context.Context, method byte, payload []byte) ([]byte, error) {
	f.calls++
	if f.deadErr != nil {
		return nil, f.deadErr
	}
	if f.calls <= f.failures {
		return nil, fmt.Errorf("drop %d: %w", f.calls, ErrTransient)
	}
	return payload, nil
}

func TestRetrierHealsTransientFaults(t *testing.T) {
	f := &flakyCaller{failures: 2}
	var slept []time.Duration
	r := &Retrier{
		T:      f,
		Policy: RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	resp, err := r.Call(7, []byte("ok"))
	if err != nil {
		t.Fatalf("retrier did not heal: %v", err)
	}
	if string(resp) != "ok" {
		t.Fatalf("resp = %q", resp)
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d, want 3", f.calls)
	}
	if r.Retries() != 2 || r.Healed() != 1 {
		t.Fatalf("retries=%d healed=%d, want 2/1", r.Retries(), r.Healed())
	}
	// Exponential backoff: 1ms then 2ms.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoffs = %v", slept)
	}
}

func TestRetrierBoundedAndSurfacesTransient(t *testing.T) {
	f := &flakyCaller{failures: 100}
	r := &Retrier{T: f, Policy: RetryPolicy{MaxAttempts: 3}, Sleep: func(time.Duration) {}}
	_, err := r.Call(1, nil)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retrier error: %v", err)
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d, want exactly MaxAttempts", f.calls)
	}
}

func TestRetrierNeverRetriesDead(t *testing.T) {
	f := &flakyCaller{deadErr: fmt.Errorf("gone: %w", ErrServerDead)}
	r := &Retrier{T: f, Policy: DefaultRetryPolicy(), Sleep: func(time.Duration) {}}
	_, err := r.Call(1, nil)
	if !errors.Is(err, ErrServerDead) {
		t.Fatalf("error: %v", err)
	}
	if f.calls != 1 {
		t.Fatalf("calls = %d; dead peers must not be retried", f.calls)
	}
}

func TestRetrierHonoursCancelledContext(t *testing.T) {
	f := &flakyCaller{failures: 100}
	r := &Retrier{T: f, Policy: RetryPolicy{MaxAttempts: 10}, Sleep: func(time.Duration) {}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.CallCtx(ctx, 1, nil)
	if err == nil {
		t.Fatal("cancelled retrier call succeeded")
	}
	if f.calls != 1 {
		t.Fatalf("calls = %d; a cancelled context must stop the retry loop", f.calls)
	}
}

func TestBackoffCaps(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestErrorPayloadRoundTrip(t *testing.T) {
	cases := []error{
		errors.New("plain"),
		fmt.Errorf("x: %w", ErrServerDead),
		fmt.Errorf("y: %w", ErrTransient),
	}
	for _, in := range cases {
		re := decodeRemoteError(4, encodeErrorPayload(in))
		//lint:ignore sentinelerr encode/decode must preserve the exact message text
		if re.Message != in.Error() {
			t.Errorf("message %q -> %q", in.Error(), re.Message)
		}
		if errors.Is(in, ErrServerDead) != errors.Is(re, ErrServerDead) {
			t.Errorf("dead classification lost for %v", in)
		}
		if errors.Is(in, ErrTransient) != errors.Is(re, ErrTransient) {
			t.Errorf("transient classification lost for %v", in)
		}
	}
	if re := decodeRemoteError(9, nil); re.Message != "" || re.Method != 9 {
		t.Errorf("empty payload decoded to %+v", re)
	}
}
