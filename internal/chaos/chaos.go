// Package chaos is the deterministic fault-injection layer for the LMP
// runtime. An Injector couples a seeded random source to the simulation
// clock and produces crash-stop server failures, dropped / delayed /
// duplicated RPCs, and link degradation — all replayable: the same seed
// and schedule yield the same fault sequence and the same event trace,
// byte for byte.
//
// The injector never reads wall-clock time; every timestamp is simulated
// (the package is gated by the simtime analyzer). Harnesses drive it two
// ways: scheduled faults (CrashAt / RestoreAt / DegradeLinkAt place
// events on the sim engine) and per-call faults (WrapTransport interposes
// on an rpc.Caller and rolls drop/delay/dup per call).
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/lmp-project/lmp/internal/sim"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// FaultKind names one kind of injected fault in the event trace.
type FaultKind int

const (
	// FaultCrash is a crash-stop server failure.
	FaultCrash FaultKind = iota
	// FaultRestore returns a crashed server to service.
	FaultRestore
	// FaultDegrade multiplies a server's link latency (Link0/Link1
	// asymmetry in the paper's fabric model).
	FaultDegrade
	// FaultDrop is a dropped call (surfaced as rpc.ErrTransient).
	FaultDrop
	// FaultDelay is a delayed call that still completed in time.
	FaultDelay
	// FaultTimeout is a delay that exceeded the call timeout.
	FaultTimeout
	// FaultDup is a duplicated call (delivered twice).
	FaultDup
	// FaultDead is a call rejected because the target is crashed.
	FaultDead
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestore:
		return "restore"
	case FaultDegrade:
		return "degrade"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultTimeout:
		return "timeout"
	case FaultDup:
		return "dup"
	case FaultDead:
		return "dead"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Event is one entry in the injector's trace.
type Event struct {
	At     sim.Time
	Kind   FaultKind
	Server int
	Detail string
}

func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v %v srv=%d", e.At, e.Kind, e.Server)
	}
	return fmt.Sprintf("%v %v srv=%d %s", e.At, e.Kind, e.Server, e.Detail)
}

// Config tunes an Injector. Probabilities are per call; zero values mean
// the corresponding fault is never injected.
type Config struct {
	// Seed fixes the random source. Equal seeds replay identical fault
	// sequences.
	Seed int64
	// PDrop, PDelay, PDup are per-call probabilities of dropping,
	// delaying, and duplicating a wrapped transport call.
	PDrop, PDelay, PDup float64
	// MaxDelay bounds an injected delay (uniform in (0, MaxDelay]).
	MaxDelay sim.Duration
	// CallTimeout, when positive, turns any effective delay (after link
	// degradation) above it into a transient timeout failure.
	CallTimeout sim.Duration
	// Metrics receives fault counters; nil allocates a private registry.
	Metrics *telemetry.Registry
}

// Injector produces deterministic faults against the simulation clock.
// Methods are safe for concurrent use; determinism is only guaranteed
// when calls arrive in a deterministic order (single-goroutine harnesses
// or externally ordered drivers).
type Injector struct {
	eng *sim.Engine
	cfg Config

	mu         sync.Mutex
	rng        *rand.Rand
	crashed    map[int]bool
	slow       map[int]float64
	trace      []Event
	delaySched func(d sim.Duration, fire func())

	// OnCrash and OnRestore, when set, run inside the scheduled crash /
	// restore events (the core harness points them at Pool.Crash and
	// RepairServer). Set them before the engine runs.
	OnCrash   func(server int)
	OnRestore func(server int)

	crashes *telemetry.Counter
	drops   *telemetry.Counter
	delays  *telemetry.Counter
	dups    *telemetry.Counter
}

// New builds an injector over the engine's clock.
func New(eng *sim.Engine, cfg Config) *Injector {
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Injector{
		eng:     eng,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		crashed: make(map[int]bool),
		slow:    make(map[int]float64),
		crashes: reg.Counter("chaos.crashes"),
		drops:   reg.Counter("chaos.drops"),
		delays:  reg.Counter("chaos.delays"),
		dups:    reg.Counter("chaos.dups"),
	}
}

// Seed reports the injector's seed, for failure reports.
func (in *Injector) Seed() int64 { return in.cfg.Seed }

// Now reports the current simulated time.
func (in *Injector) Now() sim.Time { return in.eng.Now() }

// record appends a trace event stamped with the current sim time. Caller
// holds in.mu.
func (in *Injector) record(kind FaultKind, server int, detail string) {
	in.trace = append(in.trace, Event{At: in.eng.Now(), Kind: kind, Server: server, Detail: detail})
}

// CrashAt schedules a crash-stop failure of server at sim time t. The
// returned handle cancels the crash while it is still pending.
func (in *Injector) CrashAt(t sim.Time, server int) *sim.Scheduled {
	return in.eng.Schedule(t, func() {
		in.mu.Lock()
		already := in.crashed[server]
		in.crashed[server] = true
		if !already {
			in.record(FaultCrash, server, "")
		}
		in.mu.Unlock()
		if already {
			return
		}
		in.crashes.Inc()
		if in.OnCrash != nil {
			in.OnCrash(server)
		}
	})
}

// RestoreAt schedules server's return to service at sim time t. Harnesses
// cancel the handle if the server crashes again inside the window.
func (in *Injector) RestoreAt(t sim.Time, server int) *sim.Scheduled {
	return in.eng.Schedule(t, func() {
		in.mu.Lock()
		wasCrashed := in.crashed[server]
		delete(in.crashed, server)
		if wasCrashed {
			in.record(FaultRestore, server, "")
		}
		in.mu.Unlock()
		if wasCrashed && in.OnRestore != nil {
			in.OnRestore(server)
		}
	})
}

// DegradeLinkAt schedules server's link latency to be multiplied by
// factor from sim time t on (factor 1 restores full speed; e.g. 4 models
// the far Link1 hop of the paper's two-level fabric).
func (in *Injector) DegradeLinkAt(t sim.Time, server int, factor float64) *sim.Scheduled {
	if factor < 1 {
		factor = 1
	}
	return in.eng.Schedule(t, func() {
		in.mu.Lock()
		if factor == 1 {
			delete(in.slow, server)
		} else {
			in.slow[server] = factor
		}
		in.record(FaultDegrade, server, fmt.Sprintf("x%g", factor))
		in.mu.Unlock()
	})
}

// SetDelayScheduler installs the hook that realizes FaultDelay verdicts
// as deferred completions: for each delayed call the link hands the
// verdict's duration and a fire func to fn, and the underlying call runs
// only when fire does. Without a scheduler (the default), delay verdicts
// are recorded but the call proceeds immediately — the pre-hedging
// behaviour. The duration is simulated; fn owns mapping it onto whatever
// clock drives the harness (the hedging chaos tests scale it onto a real
// timer, keeping this package free of wall-clock reads). Verdicts are
// still drawn at issue time in the fixed seed order, so the trace is
// deterministic regardless of completion order.
func (in *Injector) SetDelayScheduler(fn func(d sim.Duration, fire func())) {
	in.mu.Lock()
	in.delaySched = fn
	in.mu.Unlock()
}

// Crashed reports whether server is currently crash-stopped.
func (in *Injector) Crashed(server int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed[server]
}

// LinkFactor reports server's current latency multiplier (1 = healthy).
func (in *Injector) LinkFactor(server int) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if f, ok := in.slow[server]; ok {
		return f
	}
	return 1
}

// Trace returns a copy of the fault trace so far.
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.trace))
	copy(out, in.trace)
	return out
}

// TraceString renders the trace one event per line — the canonical form
// harnesses compare across replays of one seed.
func (in *Injector) TraceString() string {
	var sb strings.Builder
	for _, e := range in.Trace() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
