package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineZeroValueUsable(t *testing.T) {
	var e Engine
	ran := false
	e.After(10, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestEngineSchedulingInsideEvent(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.At(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v events, want 2", ran)
	}
	if e.Now() != 12 {
		t.Fatalf("Now() = %v, want 12", e.Now())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("ran %v events after Run, want 4", ran)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
}

func TestNegativeAfterClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative After not clamped: ran=%v now=%v", ran, e.Now())
	}
}

// Property: events always execute in non-decreasing time order regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, d := range delays {
			e.At(Time(d), func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var grants []int
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() {
			grants = append(grants, i)
			e.After(10, r.Release)
		})
	}
	e.Run()
	if len(grants) != 5 {
		t.Fatalf("grants = %v, want 5 entries", grants)
	}
	for i, g := range grants {
		if g != i {
			t.Fatalf("grants out of order: %v", grants)
		}
	}
}

func TestResourceCapacityRespected(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 3)
	maxHeld := 0
	held := 0
	for i := 0; i < 10; i++ {
		r.Acquire(func() {
			held++
			if held > maxHeld {
				maxHeld = held
			}
			e.After(7, func() {
				held--
				r.Release()
			})
		})
	}
	e.Run()
	if maxHeld != 3 {
		t.Fatalf("max concurrent holders = %d, want 3", maxHeld)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	e := NewEngine()
	NewResource(e, 1).Release()
}

func TestTryAcquireBoundedQueue(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	r.MaxQueue = 2
	admitted := 0
	for i := 0; i < 5; i++ {
		if r.TryAcquire(func() { e.After(1, r.Release) }) {
			admitted++
		}
	}
	// 1 held + 2 queued = 3 admitted.
	if admitted != 3 {
		t.Fatalf("admitted = %d, want 3", admitted)
	}
	e.Run()
}

func TestPipeServiceTime(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1e9) // 1 GB/s => 1 byte/ns
	var done Time
	p.Transfer(1000, func() { done = e.Now() })
	e.Run()
	if done != 1000 {
		t.Fatalf("transfer finished at %v, want 1000", done)
	}
}

func TestPipeFIFOQueueing(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1e9)
	var finishes []Time
	p.Transfer(100, func() { finishes = append(finishes, e.Now()) })
	p.Transfer(100, func() { finishes = append(finishes, e.Now()) })
	p.Transfer(100, func() { finishes = append(finishes, e.Now()) })
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if finishes[i] != want[i] {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
}

func TestPipeUtilization(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, 1e9)
	p.Transfer(500, func() {})
	e.Run()
	e.RunUntil(1000)
	u := p.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if p.BytesServed() != 500 {
		t.Fatalf("bytes served = %d, want 500", p.BytesServed())
	}
}

// Property: pipe throughput converges to its configured rate under
// saturation, independent of transfer size distribution.
func TestPipeThroughputProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		rate := 1e8 + rng.Float64()*1e10
		p := NewPipe(e, rate)
		total := 0
		for i := 0; i < 100; i++ {
			sz := 64 + rng.Intn(4096)
			total += sz
			p.Transfer(sz, func() {})
		}
		e.Run()
		got := float64(total) / e.Now().Sub(0).Seconds()
		if got < rate*0.9 || got > rate*1.1 {
			t.Fatalf("trial %d: throughput %.3g, want ~%.3g", trial, got, rate)
		}
	}
}
