package fabric

import (
	"fmt"

	"github.com/lmp-project/lmp/internal/memsim"
	"github.com/lmp-project/lmp/internal/sim"
)

// This file models the rack-scale form of the fabric: CXL 3 Global
// Fabric-Attached Memory with Port Based Routing (§2.2). Endpoints attach
// to leaf switches; leaves connect to a spine. Every switch holds a PBR
// table mapping destination endpoint to output port, and each switch hop
// adds latency (the re-timers and longer wires the paper expects to make
// CXL fabrics slower than UPI).

// RackEndpoint is a server or memory device attached to a leaf switch.
type RackEndpoint struct {
	ID   EndpointID
	Name string
	Leaf int

	ingress *sim.Pipe
	egress  *sim.Pipe
	mem     *memsim.Memory
}

// Mem returns the endpoint's memory device.
func (e *RackEndpoint) Mem() *memsim.Memory { return e.mem }

// leafSwitch carries per-leaf uplink pipes and the PBR table.
type leafSwitch struct {
	up   *sim.Pipe // toward the spine
	down *sim.Pipe // from the spine
	// pbr maps destination endpoint to the local port ("deliver locally")
	// or the uplink.
	pbr map[EndpointID]int
}

// port numbers in the PBR table.
const (
	portLocal  = -1
	portUplink = -2
)

// Rack is a two-tier (leaf/spine) fabric.
type Rack struct {
	eng        *sim.Engine
	link       memsim.Profile
	memProfile memsim.Profile
	hopNS      float64

	leaves    []*leafSwitch
	endpoints []*RackEndpoint
}

// NewRack builds a rack fabric with the given number of leaf switches.
// link sets endpoint and uplink port speeds; uplinkMultiple widens the
// leaf↔spine links relative to an endpoint port (fan-in provisioning);
// hopNS is the added latency per switch traversed.
func NewRack(eng *sim.Engine, leaves int, link, memProfile memsim.Profile, uplinkMultiple float64, hopNS float64) (*Rack, error) {
	if leaves <= 0 {
		return nil, fmt.Errorf("fabric: rack needs leaves")
	}
	if uplinkMultiple <= 0 {
		return nil, fmt.Errorf("fabric: uplink multiple %v must be positive", uplinkMultiple)
	}
	if hopNS < 0 {
		return nil, fmt.Errorf("fabric: negative hop latency")
	}
	r := &Rack{eng: eng, link: link, memProfile: memProfile, hopNS: hopNS}
	for i := 0; i < leaves; i++ {
		r.leaves = append(r.leaves, &leafSwitch{
			up:   sim.NewPipe(eng, link.Bandwidth*uplinkMultiple),
			down: sim.NewPipe(eng, link.Bandwidth*uplinkMultiple),
			pbr:  make(map[EndpointID]int),
		})
	}
	return r, nil
}

// AddEndpoint attaches an endpoint to the given leaf and installs its
// PBR entries on every switch.
func (r *Rack) AddEndpoint(leaf int, name string) (*RackEndpoint, error) {
	if leaf < 0 || leaf >= len(r.leaves) {
		return nil, fmt.Errorf("fabric: no leaf %d", leaf)
	}
	e := &RackEndpoint{
		ID:      EndpointID(len(r.endpoints)),
		Name:    name,
		Leaf:    leaf,
		ingress: sim.NewPipe(r.eng, r.link.Bandwidth),
		egress:  sim.NewPipe(r.eng, r.link.Bandwidth),
		mem:     memsim.NewMemory(r.eng, r.memProfile),
	}
	r.endpoints = append(r.endpoints, e)
	for li, l := range r.leaves {
		if li == leaf {
			l.pbr[e.ID] = portLocal
		} else {
			l.pbr[e.ID] = portUplink
		}
	}
	return e, nil
}

// Route reports the switch hops a message from src to dst traverses
// (leaf indexes), resolved through the PBR tables.
func (r *Rack) Route(src, dst *RackEndpoint) ([]int, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("fabric: nil endpoint")
	}
	hops := []int{src.Leaf}
	port, ok := r.leaves[src.Leaf].pbr[dst.ID]
	if !ok {
		return nil, fmt.Errorf("fabric: no PBR entry for endpoint %d on leaf %d", dst.ID, src.Leaf)
	}
	if port == portLocal {
		return hops, nil
	}
	// Via the spine to the destination leaf.
	hops = append(hops, dst.Leaf)
	if _, ok := r.leaves[dst.Leaf].pbr[dst.ID]; !ok {
		return nil, fmt.Errorf("fabric: destination leaf %d missing PBR entry", dst.Leaf)
	}
	return hops, nil
}

// Hops reports the number of switches traversed between two endpoints
// (1 within a leaf, 2 across the spine — the spine itself is modeled as
// wiring between leaves).
func (r *Rack) Hops(src, dst *RackEndpoint) (int, error) {
	route, err := r.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return len(route), nil
}

// Read moves size bytes from memory at target to requester. The path is
// target memory → target egress port → (uplink + downlink when crossing
// leaves) → requester ingress port, with hopNS added per switch.
func (r *Rack) Read(requester, target *RackEndpoint, size int, done func()) error {
	if requester == target {
		target.mem.Read(size, done)
		return nil
	}
	route, err := r.Route(target, requester) // data flows target -> requester
	if err != nil {
		return err
	}
	lat := r.link.Latency.Latency(target.egress.Utilization()) + r.hopNS*float64(len(route))
	crossLeaf := len(route) > 1
	r.eng.After(sim.Duration(lat), func() {
		target.mem.Read(size, func() {
			target.egress.Transfer(size, func() {
				deliver := func() {
					requester.ingress.Transfer(size, done)
				}
				if crossLeaf {
					r.leaves[target.Leaf].up.Transfer(size, func() {
						r.leaves[requester.Leaf].down.Transfer(size, deliver)
					})
				} else {
					deliver()
				}
			})
		})
	})
	return nil
}

// Endpoints returns the attached endpoints in attachment order.
func (r *Rack) Endpoints() []*RackEndpoint { return r.endpoints }
