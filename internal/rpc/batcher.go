// The per-connection send batcher. Both sides of the wire write through
// one: the client's request path and the server's reply path each queue
// frames on it, and a single flusher goroutine drains the queue. While a
// conn.Write is in flight every newly queued frame accumulates, so
// batching is opportunistic ("natural"): an idle connection sends a lone
// frame immediately, a busy one coalesces everything that queued during
// the last write into one vectored batch frame — one syscall, one TCP
// segment — and the receiver fans the sub-frames back out. An optional
// doorbell window adds a fixed wait after the first frame of a quiet
// period, trading a bounded latency bump for fuller batches.
package rpc

import (
	"encoding/binary"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lmp-project/lmp/internal/telemetry"
)

const (
	// batchEntryMax bounds the payload size eligible for batching; larger
	// frames go out bare through writeFrame's two-write large path, which
	// beats copying them into the assembly buffer.
	batchEntryMax = 16 << 10
	// maxBatchFrames bounds the sub-frame count of one batch.
	maxBatchFrames = 128
	// maxBatchBytes bounds the assembled size of one batch frame.
	maxBatchBytes = 256 << 10
)

// sendEntry is one queued frame awaiting flush.
type sendEntry struct {
	kind    byte
	method  byte
	id      uint64
	budget  int64 // remaining deadline budget (ns); budget kinds only
	sc      telemetry.SpanContext
	payload []byte
}

// encodedLen is the entry's on-wire size inside a batch.
func (e *sendEntry) encodedLen() int {
	return frameHeaderLen + prefixLen(e.kind) + len(e.payload)
}

// batcher serializes frame writes to w through one flusher goroutine.
// enqueue never blocks on the network: it appends under the queue lock
// and rings the doorbell. The zero value is not usable; see newBatcher.
type batcher struct {
	w      io.Writer
	window time.Duration
	// onErr observes the first write failure (the connection is hosed
	// from that point; queued and future frames are dropped). May be nil.
	onErr func(error)

	mu     sync.Mutex
	cond   *sync.Cond
	q      []sendEntry
	closed bool
	failed bool

	exited chan struct{}

	// flusher-owned scratch, reused across flushes so the steady-state
	// send path does not allocate.
	local []sendEntry
	buf   []byte

	framesSent   atomic.Uint64 // top-level frames written (batches count once)
	batchesSent  atomic.Uint64 // batch frames among framesSent
	batchedSends atomic.Uint64 // sub-frames that rode inside a batch
	maxBatch     atomic.Uint64 // largest sub-frame count of any one batch
}

// newBatcher starts the flusher goroutine; the caller must eventually
// close() the batcher to stop it. window > 0 enables the doorbell wait.
func newBatcher(w io.Writer, window time.Duration, onErr func(error)) *batcher {
	b := &batcher{w: w, window: window, onErr: onErr, exited: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	go b.flushLoop()
	return b
}

// enqueue queues one frame for sending. It returns ErrClosed after
// close() and the first write error after a send failure; in both cases
// the frame is dropped and the caller owns the failure path.
func (b *batcher) enqueue(e sendEntry) error {
	b.mu.Lock()
	if b.closed || b.failed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.q = append(b.q, e)
	if len(b.q) == 1 {
		b.cond.Signal()
	}
	b.mu.Unlock()
	return nil
}

// close stops the flusher after the current flush; still-queued frames
// are dropped (the owning client/server fails their calls). Idempotent.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.cond.Signal()
	b.mu.Unlock()
	<-b.exited
}

func (b *batcher) flushLoop() {
	defer close(b.exited)
	for {
		b.mu.Lock()
		for len(b.q) == 0 && !b.closed {
			b.cond.Wait()
		}
		if b.closed {
			b.mu.Unlock()
			return
		}
		if b.window > 0 {
			// Doorbell window: let a quiet period's first frame wait a
			// beat so its contemporaries can join the batch.
			b.mu.Unlock()
			time.Sleep(b.window)
			b.mu.Lock()
		} else {
			// Yield passes: give runnable peers a chance to enqueue before
			// this flush commits. On a saturated machine a blocked caller
			// hands the CPU straight to the flusher, so the queue would
			// otherwise never hold more than one frame; a Gosched is far
			// cheaper than a timer and costs a lone caller almost nothing.
			// Keep yielding while the queue is still filling, bounded so a
			// firehose of producers cannot stall the flush indefinitely.
			for i, last := 0, 0; i < 4 && len(b.q) > last; i++ {
				last = len(b.q)
				b.mu.Unlock()
				runtime.Gosched()
				b.mu.Lock()
			}
		}
		b.q, b.local = b.local[:0], b.q
		failed := b.failed
		b.mu.Unlock()
		if failed {
			continue // drain and drop; the connection is gone
		}
		if err := b.writeBatch(b.local); err != nil {
			b.mu.Lock()
			first := !b.failed
			b.failed = true
			b.mu.Unlock()
			if first && b.onErr != nil {
				b.onErr(err)
			}
		}
	}
}

// writeBatch writes the drained entries: runs of small frames coalesce
// into batch envelopes, large frames go out bare, and a lone frame is
// sent in the pre-batch wire format.
func (b *batcher) writeBatch(entries []sendEntry) error {
	for start := 0; start < len(entries); {
		e := &entries[start]
		if len(e.payload) > batchEntryMax {
			if err := b.writeOne(e); err != nil {
				return err
			}
			start++
			continue
		}
		// Grow a run of batchable frames within the count/byte budgets.
		end := start + 1
		run := e.encodedLen()
		for end < len(entries) && end-start < maxBatchFrames {
			n := &entries[end]
			if len(n.payload) > batchEntryMax || run+n.encodedLen() > maxBatchBytes {
				break
			}
			run += n.encodedLen()
			end++
		}
		if end-start == 1 {
			if err := b.writeOne(e); err != nil {
				return err
			}
			start = end
			continue
		}
		buf := b.buf[:0]
		buf = append(buf, kindBatch, 0)
		buf = binary.BigEndian.AppendUint64(buf, uint64(end-start))
		buf = binary.BigEndian.AppendUint32(buf, uint32(run))
		for i := start; i < end; i++ {
			s := &entries[i]
			buf = appendSubFrame(buf, s.kind, s.method, s.id, s.budget, s.sc, s.payload)
		}
		b.buf = buf[:0] // retain capacity for the next flush
		if _, err := b.w.Write(buf); err != nil {
			return err
		}
		b.framesSent.Add(1)
		b.batchesSent.Add(1)
		b.batchedSends.Add(uint64(end - start))
		if n := uint64(end - start); n > b.maxBatch.Load() {
			b.maxBatch.Store(n) // flusher-only writer; no CAS needed
		}
		start = end
	}
	return nil
}

// writeOne sends a single entry in the pre-batch wire format.
func (b *batcher) writeOne(e *sendEntry) error {
	var err error
	if prefixLen(e.kind) > 0 {
		err = writePrefixedFrame(b.w, e.kind, e.method, e.id, e.budget, e.sc, e.payload)
	} else {
		err = writeFrame(b.w, e.kind, e.method, e.id, e.payload)
	}
	if err == nil {
		b.framesSent.Add(1)
	}
	return err
}
