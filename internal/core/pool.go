// Package core implements the Logical Memory Pool runtime — the paper's
// primary contribution — and the physical-pool baselines it is evaluated
// against.
//
// A Pool carves a shared region out of every server's DRAM; the union of
// the shared regions is the disaggregated memory. Applications allocate
// buffers that live at stable logical addresses, read and write them from
// any server (local or remote NUMA-style access), and the runtime's
// background tasks rebalance data placement (migration) and region sizes
// (the sizing optimizer). A small coherent region provides synchronization
// primitives; replication or erasure coding masks server crashes.
package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/memnode"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/pagetable"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// SliceSize is the pool's allocation and migration granularity,
// re-exported from the addressing scheme.
const SliceSize = addr.SliceSize

// ErrServerDead reports an operation that required a crashed server.
var ErrServerDead = errors.New("core: server is down")

// ErrReleased reports use of a released buffer.
var ErrReleased = errors.New("core: buffer already released")

// ServerConfig describes one server joining a logical pool.
type ServerConfig struct {
	Name string
	// Capacity is the server's DRAM in bytes.
	Capacity int64
	// SharedBytes is the initial shared-region size (adjustable later).
	// It is rounded down to a slice multiple.
	SharedBytes int64
}

// Config configures a logical pool.
type Config struct {
	Servers   []ServerConfig
	Placement alloc.Policy
	// CoherentBytes sizes the coherent region (a few GBs in deployment;
	// defaults to 1MiB here, plenty for coordination state).
	CoherentBytes int64
	// CoherenceGranularity is the directory tracking block (default 64;
	// smaller avoids false sharing).
	CoherenceGranularity int64
	// Protection is the default protection for new buffers.
	Protection failure.Policy
	// Migration tunes the locality balancer.
	Migration migrate.Policy
}

func (c *Config) fillDefaults() {
	if c.CoherentBytes == 0 {
		c.CoherentBytes = 1 << 20
	}
	if c.CoherenceGranularity == 0 {
		c.CoherenceGranularity = 64
	}
	if c.Migration.HysteresisFactor == 0 {
		c.Migration = migrate.DefaultPolicy()
	}
}

// sliceBacking is the authoritative physical location of one logical
// slice.
type sliceBacking struct {
	server addr.ServerID
	offset int64
	buf    *Buffer
}

// sliceMap adapts a pagetable.Table to the addr.LocalMap interface: the
// server-local fine-grained step of the two-step translation.
type sliceMap struct {
	t *pagetable.Table
}

func newSliceMap() *sliceMap { return &sliceMap{t: pagetable.New()} }

func (m *sliceMap) MapSlice(s uint64, off int64) {
	if err := m.t.Map(s, off); err != nil {
		// Slice indexes fit the table's vpage width by construction
		// (2MiB slices give 2^36 slices within the 2^48 table range).
		panic(fmt.Sprintf("core: slice map: %v", err))
	}
}

func (m *sliceMap) UnmapSlice(s uint64) bool { return m.t.Unmap(s) }

func (m *sliceMap) LookupSlice(s uint64) (int64, bool) {
	off, ok, _ := m.t.Lookup(s)
	return off, ok
}

// Pool is a logical memory pool across a set of servers.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	nodes   []*memnode.Node
	regions []*alloc.Extents
	placer  *alloc.Placer
	global  *addr.GlobalMap
	locals  []*sliceMap
	trans   *addr.Translator

	nextSlice uint64
	freeRuns  []addr.Range

	slices  map[uint64]*sliceBacking
	buffers map[addr.Logical]*Buffer
	dead    map[addr.ServerID]bool

	matrix *migrate.AccessMatrix

	dir          *coherence.Directory
	coherent     []byte
	coherentNext int64

	metrics *telemetry.Registry
}

// New builds a pool from the configuration.
func New(cfg Config) (*Pool, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("core: pool needs at least one server")
	}
	cfg.fillDefaults()
	if err := cfg.Protection.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Migration.Validate(); err != nil {
		return nil, err
	}
	dir, err := coherence.NewDirectory(cfg.CoherenceGranularity,
		int(cfg.CoherentBytes/cfg.CoherenceGranularity))
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:      cfg,
		global:   addr.NewGlobalMap(),
		slices:   make(map[uint64]*sliceBacking),
		buffers:  make(map[addr.Logical]*Buffer),
		dead:     make(map[addr.ServerID]bool),
		matrix:   migrate.NewAccessMatrix(),
		dir:      dir,
		coherent: make([]byte, cfg.CoherentBytes),
		metrics:  telemetry.NewRegistry(),
	}
	var regions []*alloc.Region
	for i, sc := range cfg.Servers {
		if sc.Capacity <= 0 {
			return nil, fmt.Errorf("core: server %d has no capacity", i)
		}
		if sc.SharedBytes < 0 || sc.SharedBytes > sc.Capacity {
			return nil, fmt.Errorf("core: server %d shares %d of %d", i, sc.SharedBytes, sc.Capacity)
		}
		shared := sc.SharedBytes - sc.SharedBytes%SliceSize
		node, err := memnode.New(sc.Name, sc.Capacity, shared)
		if err != nil {
			return nil, err
		}
		ext, err := alloc.NewExtents(shared, SliceSize)
		if err != nil {
			return nil, err
		}
		p.nodes = append(p.nodes, node)
		p.regions = append(p.regions, ext)
		p.locals = append(p.locals, newSliceMap())
		regions = append(regions, &alloc.Region{Server: addr.ServerID(i), Mem: ext})
	}
	placer, err := alloc.NewPlacer(cfg.Placement, SliceSize, regions...)
	if err != nil {
		return nil, err
	}
	placer.MaxChunk = SliceSize
	p.placer = placer
	locals := make(map[addr.ServerID]addr.LocalMap, len(p.locals))
	for i, lm := range p.locals {
		locals[addr.ServerID(i)] = lm
	}
	p.trans = &addr.Translator{Global: p.global, Locals: locals}
	return p, nil
}

// Servers reports the number of pool servers.
func (p *Pool) Servers() int { return len(p.nodes) }

// Metrics exposes the pool's telemetry registry.
func (p *Pool) Metrics() *telemetry.Registry { return p.metrics }

// Directory exposes the coherent region's coherence engine.
func (p *Pool) Directory() *coherence.Directory { return p.dir }

// SharedBytes reports server s's current shared-region size.
func (p *Pool) SharedBytes(s addr.ServerID) int64 {
	return p.regions[s].Size()
}

// FreePoolBytes reports unallocated pool capacity.
func (p *Pool) FreePoolBytes() int64 { return p.placer.TotalFree() }

// Buffer is an allocation in the pool at a stable logical address range.
type Buffer struct {
	pool *Pool
	rng  addr.Range
	size int64
	prot failure.Policy
	// copies[c][i] backs logical slice firstSlice+i for replica copy c.
	copies [][]alloc.Chunk
	ec     *ecState

	released bool
}

// Addr returns the buffer's base logical address (stable across
// migration).
func (b *Buffer) Addr() addr.Logical { return b.rng.Start }

// Size returns the requested byte size.
func (b *Buffer) Size() int64 { return b.size }

// Range returns the slice-aligned logical range backing the buffer.
func (b *Buffer) Range() addr.Range { return b.rng }

// Protection returns the buffer's protection policy.
func (b *Buffer) Protection() failure.Policy { return b.prot }

func (b *Buffer) sliceCount() uint64 { return uint64(b.rng.Size / SliceSize) }

func (b *Buffer) firstSlice() uint64 { return addr.SliceOf(b.rng.Start) }

// ReadAt copies len(p) bytes from the buffer at offset off, issued by
// server from.
func (b *Buffer) ReadAt(from addr.ServerID, p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > b.size {
		return fmt.Errorf("core: read [%d,%d) outside buffer of %d", off, off+int64(len(p)), b.size)
	}
	if b.released {
		return ErrReleased
	}
	return b.pool.Read(from, b.rng.Start+addr.Logical(off), p)
}

// WriteAt copies data into the buffer at offset off, issued by server
// from.
func (b *Buffer) WriteAt(from addr.ServerID, data []byte, off int64) error {
	if off < 0 || off+int64(len(data)) > b.size {
		return fmt.Errorf("core: write [%d,%d) outside buffer of %d", off, off+int64(len(data)), b.size)
	}
	if b.released {
		return ErrReleased
	}
	return b.pool.Write(from, b.rng.Start+addr.Logical(off), data)
}

// Alloc places size bytes in the pool with the pool's default protection.
// from is the requesting server (used by locality-aware placement).
func (p *Pool) Alloc(size int64, from addr.ServerID) (*Buffer, error) {
	return p.AllocProtected(size, from, p.cfg.Protection)
}

// AllocProtected places size bytes with an explicit protection policy.
func (p *Pool) AllocProtected(size int64, from addr.ServerID, prot failure.Policy) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: alloc of %d bytes", size)
	}
	if err := prot.Validate(); err != nil {
		return nil, err
	}
	rounded := (size + SliceSize - 1) / SliceSize * SliceSize
	var chunks []alloc.Chunk
	var err error
	if prot.Scheme == failure.ErasureCode {
		// Erasure coding protects against server loss only if a stripe's
		// data shards live on distinct servers: force striped placement.
		chunks, err = p.placer.PlaceStriped(rounded)
	} else {
		chunks, err = p.placer.Place(rounded, from)
	}
	if err != nil {
		return nil, fmt.Errorf("core: alloc %d bytes: %w", size, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	rng := p.reserveLogicalLocked(rounded)
	b := &Buffer{pool: p, rng: rng, size: size, prot: prot}
	first := addr.SliceOf(rng.Start)
	for i, c := range chunks {
		s := first + uint64(i)
		p.slices[s] = &sliceBacking{server: c.Server, offset: c.Offset, buf: b}
		p.locals[c.Server].MapSlice(s, c.Offset)
	}
	for i, c := range chunks {
		s := first + uint64(i)
		if err := p.global.Bind(addr.Range{Start: addr.SliceBase(s), Size: SliceSize}, c.Server); err != nil {
			p.releasePartialLocked(b, chunks)
			return nil, err
		}
	}
	if err := p.protectLocked(b, chunks, from); err != nil {
		p.releasePartialLocked(b, chunks)
		return nil, err
	}
	p.buffers[rng.Start] = b
	p.metrics.Counter("pool.allocs").Inc()
	p.metrics.Gauge("pool.bytes_allocated").Add(rounded)
	return b, nil
}

// reserveLogicalLocked finds a logical range of the given (slice-aligned)
// size, reusing freed runs first.
func (p *Pool) reserveLogicalLocked(size int64) addr.Range {
	for i, r := range p.freeRuns {
		if r.Size >= size {
			out := addr.Range{Start: r.Start, Size: size}
			p.freeRuns[i] = addr.Range{Start: r.Start + addr.Logical(size), Size: r.Size - size}
			if p.freeRuns[i].Size == 0 {
				p.freeRuns = append(p.freeRuns[:i], p.freeRuns[i+1:]...)
			}
			return out
		}
	}
	out := addr.Range{Start: addr.SliceBase(p.nextSlice), Size: size}
	p.nextSlice += uint64(size / SliceSize)
	return out
}

// freeBackingLocked returns one slice of physical backing to its region
// and scrubs the pages so reallocated pool memory reads as zeros (the
// allocator contract that keeps fresh replicas and parity trivially
// consistent).
func (p *Pool) freeBackingLocked(server addr.ServerID, offset int64) {
	if p.dead[server] {
		return
	}
	_ = p.regions[server].Free(offset)
	p.nodes[server].DropRange(offset, SliceSize)
}

func (p *Pool) releasePartialLocked(b *Buffer, chunks []alloc.Chunk) {
	first := b.firstSlice()
	for i, c := range chunks {
		s := first + uint64(i)
		delete(p.slices, s)
		p.locals[c.Server].UnmapSlice(s)
		p.freeBackingLocked(c.Server, c.Offset)
	}
	p.freeRuns = append(p.freeRuns, b.rng)
}

// Release frees the buffer, its replicas, and its parity blocks.
func (b *Buffer) Release() error {
	p := b.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.released {
		return ErrReleased
	}
	b.released = true
	first := b.firstSlice()
	for i := uint64(0); i < b.sliceCount(); i++ {
		s := first + i
		back := p.slices[s]
		if back == nil {
			continue
		}
		delete(p.slices, s)
		p.locals[back.server].UnmapSlice(s)
		p.freeBackingLocked(back.server, back.offset)
		_ = p.global.Bind(addr.Range{Start: addr.SliceBase(s), Size: SliceSize}, addr.NoServer)
	}
	for _, replica := range b.copies {
		for _, c := range replica {
			p.freeBackingLocked(c.Server, c.Offset)
		}
	}
	if b.ec != nil {
		for _, st := range b.ec.stripes {
			for _, pb := range st.parity {
				p.freeBackingLocked(pb.server, pb.offset)
			}
		}
	}
	delete(p.buffers, b.rng.Start)
	p.freeRuns = append(p.freeRuns, b.rng)
	p.metrics.Gauge("pool.bytes_allocated").Add(-b.rng.Size)
	return nil
}

// segment visits [la, la+n) split at slice boundaries.
func eachSegment(la addr.Logical, n int, visit func(s uint64, sliceOff int64, bufOff int, length int) error) error {
	done := 0
	for done < n {
		cur := la + addr.Logical(done)
		s := addr.SliceOf(cur)
		off := int64(uint64(cur) % SliceSize)
		length := int(SliceSize - off)
		if rem := n - done; rem < length {
			length = rem
		}
		if err := visit(s, off, done, length); err != nil {
			return err
		}
		done += length
	}
	return nil
}

// Read copies len(buf) bytes at logical address la into buf, as issued by
// server from. Remote segments pay fabric accounting; crashed owners are
// masked through replicas or erasure coding when the buffer is protected.
func (p *Pool) Read(from addr.ServerID, la addr.Logical, buf []byte) error {
	return eachSegment(la, len(buf), func(s uint64, sliceOff int64, bufOff, length int) error {
		return p.accessSlice(from, s, sliceOff, buf[bufOff:bufOff+length], false)
	})
}

// Write copies data into the pool at logical address la, as issued by
// server from, updating replicas and parity.
func (p *Pool) Write(from addr.ServerID, la addr.Logical, data []byte) error {
	return eachSegment(la, len(data), func(s uint64, sliceOff int64, bufOff, length int) error {
		return p.accessSlice(from, s, sliceOff, data[bufOff:bufOff+length], true)
	})
}

func (p *Pool) accessSlice(from addr.ServerID, s uint64, sliceOff int64, part []byte, write bool) error {
	p.mu.Lock()
	back := p.slices[s]
	if back == nil {
		p.mu.Unlock()
		return fmt.Errorf("%w: slice %d", addr.ErrUnmapped, s)
	}
	if p.dead[back.server] {
		// Recovery path: mask the failure or raise an exception.
		err := p.recoverSliceLocked(s)
		if err != nil {
			p.mu.Unlock()
			return err
		}
		back = p.slices[s]
	}
	owner := back.server
	offset := back.offset + sliceOff
	buf := back.buf
	p.mu.Unlock()

	node := p.nodes[owner]
	remote := owner != from
	if write {
		// Erasure-coded buffers need the old bytes to delta the parity.
		var old []byte
		if buf != nil && buf.prot.Scheme == failure.ErasureCode {
			old = make([]byte, len(part))
			if err := node.ReadAt(old, offset); err != nil {
				return err
			}
		}
		if err := node.WriteAt(part, offset); err != nil {
			return err
		}
		if old != nil {
			if err := p.writeParityDelta(buf, s-buf.firstSlice(), sliceOff, old, part); err != nil {
				return err
			}
		}
	} else if err := node.ReadAt(part, offset); err != nil {
		return err
	}
	node.RecordAccess(offset, remote, write)
	p.matrix.Record(s, from, 1)
	p.recordMetrics(remote, write, len(part))
	if write && buf != nil {
		if err := p.updateProtection(buf, s, sliceOff, part); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) recordMetrics(remote, write bool, n int) {
	kind := "read"
	if write {
		kind = "write"
	}
	locality := "local"
	if remote {
		locality = "remote"
	}
	p.metrics.Counter("pool." + kind + "s." + locality).Inc()
	p.metrics.Counter("pool.bytes." + kind + "." + locality).Add(uint64(n))
}

// Translate resolves a logical address through the two-step scheme.
func (p *Pool) Translate(la addr.Logical) (addr.Location, error) {
	return p.trans.Translate(la)
}

// OwnerOf reports which server currently backs la.
func (p *Pool) OwnerOf(la addr.Logical) (addr.ServerID, error) {
	return p.global.Owner(la)
}
