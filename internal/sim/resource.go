package sim

// Resource is a counted resource with FIFO admission: at most Capacity
// holders at a time, waiters granted in arrival order. It models things
// like a core's outstanding-miss registers or a link's credit pool.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func()
	// MaxQueue, if non-zero, bounds the waiter queue; TryAcquire reports
	// false when the bound would be exceeded.
	MaxQueue int
}

// NewResource returns a resource with the given capacity attached to eng.
// Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// InUse reports the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the resource capacity.
func (r *Resource) Capacity() int { return r.capacity }

// QueueLen reports the number of waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Utilization reports inUse/capacity in [0,1].
func (r *Resource) Utilization() float64 {
	return float64(r.inUse) / float64(r.capacity)
}

// Acquire requests one unit; granted calls back (possibly immediately, as a
// scheduled zero-delay event) once the unit is held.
func (r *Resource) Acquire(granted func()) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		r.eng.After(0, granted)
		return
	}
	r.waiters = append(r.waiters, granted)
}

// TryAcquire requests one unit without queueing beyond MaxQueue. It reports
// whether the request was admitted (held or queued).
func (r *Resource) TryAcquire(granted func()) bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		r.eng.After(0, granted)
		return true
	}
	if r.MaxQueue > 0 && len(r.waiters) >= r.MaxQueue {
		return false
	}
	r.waiters = append(r.waiters, granted)
	return true
}

// Release returns one unit and grants the head waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.eng.After(0, next)
		return
	}
	r.inUse--
}

// Pipe is a FIFO store-and-forward bandwidth server: transfers are serviced
// one after another, each occupying the pipe for size/rate seconds. It
// models a memory channel or fabric link direction at flit granularity.
// Busy time is tracked in fractional nanoseconds so that sub-nanosecond
// service times (a 64B line on a 97GB/s channel takes 0.66ns) accumulate
// exactly; only the completion event is rounded to the engine's
// nanosecond clock.
type Pipe struct {
	eng *Engine
	// BytesPerSecond is the service rate.
	BytesPerSecond float64

	busyUntilNS float64 // fractional ns timestamp of last scheduled completion
	busyTotalNS float64 // accumulated busy time for utilization accounting
	observedAt  Time
	bytesServed uint64
}

// NewPipe returns a pipe with the given service rate attached to eng.
func NewPipe(eng *Engine, bytesPerSecond float64) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe rate must be positive")
	}
	return &Pipe{eng: eng, BytesPerSecond: bytesPerSecond}
}

// Transfer enqueues a transfer of size bytes and calls done when the last
// byte has been serviced. Queueing delay emerges from pipe occupancy.
func (p *Pipe) Transfer(size int, done func()) {
	service := float64(size) / p.BytesPerSecond * 1e9
	start := float64(p.eng.Now())
	if p.busyUntilNS > start {
		start = p.busyUntilNS
	}
	finish := start + service
	p.busyUntilNS = finish
	p.busyTotalNS += service
	p.bytesServed += uint64(size)
	at := Time(finish)
	if at < p.eng.Now() {
		at = p.eng.Now()
	}
	p.eng.At(at, done)
}

// QueueDelay reports how long a transfer issued now would wait before
// service begins.
func (p *Pipe) QueueDelay() Duration {
	now := float64(p.eng.Now())
	if p.busyUntilNS <= now {
		return 0
	}
	return Duration(p.busyUntilNS - now)
}

// Utilization reports the fraction of time the pipe has been busy since the
// last call to ResetStats (or engine start).
func (p *Pipe) Utilization() float64 {
	elapsed := p.eng.Now().Sub(p.observedAt)
	if elapsed <= 0 {
		return 0
	}
	u := p.busyTotalNS / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// BytesServed reports the total bytes serviced since the last ResetStats.
func (p *Pipe) BytesServed() uint64 { return p.bytesServed }

// ResetStats zeroes utilization and byte counters.
func (p *Pipe) ResetStats() {
	p.busyTotalNS = 0
	p.bytesServed = 0
	p.observedAt = p.eng.Now()
}
