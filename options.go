package lmp

import (
	"time"

	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/migrate"
)

// Option adjusts a pool configuration in New. Options run after the
// Config literal is read, so they win over (and can be mixed with) field
// assignments; the zero Config plus options is the idiomatic v1 way to
// build a pool:
//
//	pool, err := lmp.New(lmp.Config{Servers: servers},
//		lmp.WithPlacement(lmp.LocalityAware),
//		lmp.WithProtection(lmp.ProtectionPolicy{Scheme: lmp.ProtectReplica, Copies: 2}),
//	)
type Option func(*Config)

// WithPlacement selects the allocation placement policy (FirstFit,
// RoundRobin, LocalityAware, or Striped).
func WithPlacement(p alloc.Policy) Option {
	return func(c *Config) { c.Placement = p }
}

// WithProtection sets the default protection policy applied by Alloc.
// AllocProtected still overrides it per buffer.
func WithProtection(pol failure.Policy) Option {
	return func(c *Config) { c.Protection = pol }
}

// WithMigrationPolicy tunes the locality balancer (migration threshold,
// hysteresis, per-round move budget).
func WithMigrationPolicy(m migrate.Policy) Option {
	return func(c *Config) { c.Migration = m }
}

// WithCoherentRegion sizes the coherent region and its directory
// granularity. Zero granularity keeps the default (64 bytes).
func WithCoherentRegion(bytes, granularity int64) Option {
	return func(c *Config) {
		c.CoherentBytes = bytes
		c.CoherenceGranularity = granularity
	}
}

// WithLocalCache enables the node-local hot-page cache and write
// combiner: each server keeps clean copies of hot remote pages in its
// private DRAM (coherence-safe — remote writers invalidate them through
// a page directory), and small remote writes coalesce into vectored
// flushes. The zero CacheConfig (beyond Enabled, which this option sets)
// picks the defaults: capacity 25% of each node's private carve-out,
// 4KiB pages, 16 shards, write combining on. Cache hit counts still feed
// the locality balancer, so sustained-hot pages are eventually migrated,
// not just cached.
func WithLocalCache(cc CacheConfig) Option {
	return func(c *Config) {
		cc.Enabled = true
		c.Cache = cc
	}
}

// WithRepairParallelism bounds the worker pool RepairServer fans slice
// reconstruction across. n <= 1 keeps recovery serial (the default):
// slices are rebuilt one at a time in deterministic table order, which
// chaos tests rely on. Larger n overlaps the fabric transfers of up to n
// independent rebuilds; each worker still commits its rebind under the
// ordinary locks, so foreground reads and writes interleave freely with
// an in-flight repair either way.
func WithRepairParallelism(n int) Option {
	return func(c *Config) { c.Repair.Parallelism = n }
}

// WithRepairConfig replaces the whole recovery/migration engine
// configuration: parallelism, the serialized compatibility mode (every
// move copies under the global structural lock, the pre-engine
// behaviour), and the fabric-delay hook benchmarks use to model
// remote-copy latency.
func WithRepairConfig(rc RepairConfig) Option {
	return func(c *Config) { c.Repair = rc }
}

// WithTracing configures per-op tracing: the span ring size, the
// sampling period, the slow-op threshold, and the clock. Tracing is on
// by default (sampling one op in 64 per issuing server); pass
// TraceConfig{Disabled: true} to turn spans and latency histograms off
// entirely — traffic counters stay on either way.
func WithTracing(tc TraceConfig) Option {
	return func(c *Config) { c.Trace = tc }
}

// WithObserver registers o to receive every completed span (OnSpan) and
// every span crossing the slow-op threshold (OnSlowOp) synchronously
// from the completing operation's goroutine. Observers must be fast and
// must not call back into the pool.
func WithObserver(o Observer) Option {
	return func(c *Config) { c.Trace.Observer = o }
}

// WithDeadlineBudget sets the default per-operation deadline budget: the
// ...Ctx entry points apply it when the caller's context carries no
// deadline of its own (a caller deadline always wins). Operations over
// budget fail with an error wrapping ErrDeadlineExceeded, checked
// between slice segments so a multi-slice access cannot overstay
// unboundedly. d <= 0 disables (the default).
func WithDeadlineBudget(d time.Duration) Option {
	return func(c *Config) { c.Tail.OpBudget = d }
}

// WithAdmissionLimit bounds concurrent foreground accesses (Read/Write
// and the vectored and ...Ctx variants): when n operations are already
// in flight, further ones fail fast with an error wrapping
// ErrOverloaded instead of queueing behind a saturated pool. n <= 0
// disables (the default). The disabled path costs nothing; the enabled
// path is one atomic per operation and stays allocation-free.
func WithAdmissionLimit(n int) Option {
	return func(c *Config) { c.Tail.AdmissionLimit = n }
}

// WithBreaker enables per-server circuit breakers fed by every access's
// latency and outcome. A server whose recent failure ratio (or slow-call
// ratio, see BreakerPolicy.SlowCallNS) trips the policy is marked
// degraded: reads of replica-protected buffers shed to a live copy,
// unprotected reads fail fast with an error wrapping ErrServerDegraded,
// and writes still reach the primary. After BreakerPolicy.OpenFor the
// breaker re-probes and closes on success. The zero policy disables.
func WithBreaker(pol BreakerPolicy) Option {
	return func(c *Config) { c.Tail.Breaker = pol }
}

// WithHedging configures hedged replica reads for the live transport
// stack (daemon clients built with WrapTailClient-style glue): an
// idempotent read that outlives the adaptive hedge delay — a tracked
// latency quantile times a multiplier — is raced against a mirror, first
// success wins, and the loser is cancelled. In-process pools have no
// wait to hedge against; there the breaker's replica shed (WithBreaker)
// plays the same role.
func WithHedging(hc HedgeConfig) Option {
	return func(c *Config) {
		hc.Enabled = true
		c.Tail.Hedge = hc
	}
}
