package coherence

import (
	"sync"
	"testing"
	"time"
)

func TestCohortLockValidation(t *testing.T) {
	d := mustDir(t, 64, 256)
	if _, err := NewCohortLock(d, 0, nil, 4); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := NewCohortLock(d, 0, []NodeID{1, 1}, 4); err == nil {
		t.Fatal("duplicate nodes accepted")
	}
	l, err := NewCohortLock(d, 0, []NodeID{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Lock(9); err == nil {
		t.Fatal("unknown node lock accepted")
	}
	if err := l.Unlock(9); err == nil {
		t.Fatal("unknown node unlock accepted")
	}
	if err := l.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(1); err == nil {
		t.Fatal("unlock by non-holder accepted")
	}
	if err := l.Unlock(0); err != nil {
		t.Fatal(err)
	}
}

func TestCohortLockMutualExclusion(t *testing.T) {
	d := mustDir(t, 64, 1024)
	nodes := []NodeID{0, 1, 2, 3}
	l, err := NewCohortLock(d, 0, nodes, 8)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	held, maxHeld, counter := 0, 0, 0
	var wg sync.WaitGroup
	// 3 threads per node.
	for _, n := range nodes {
		for th := 0; th < 3; th++ {
			n := n
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					if err := l.Lock(n); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					held++
					if held > maxHeld {
						maxHeld = held
					}
					counter++
					held--
					mu.Unlock()
					// Hold briefly so waiters queue and cohort handoffs
					// actually occur.
					time.Sleep(20 * time.Microsecond)
					if err := l.Unlock(n); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	if maxHeld != 1 {
		t.Fatalf("max holders = %d", maxHeld)
	}
	if counter != 4*3*40 {
		t.Fatalf("counter = %d", counter)
	}
	localPasses, globalPasses := l.Stats()
	if localPasses == 0 {
		t.Fatal("no local handoffs under clustered contention")
	}
	if globalPasses == 0 {
		t.Fatal("no global acquisitions recorded")
	}
}

func TestCohortLockBudgetBoundsStarvation(t *testing.T) {
	d := mustDir(t, 64, 1024)
	l, err := NewCohortLock(d, 0, []NodeID{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 floods the lock; node 1 must still get in.
	var wg sync.WaitGroup
	got1 := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := l.Lock(1); err != nil {
			t.Error(err)
			return
		}
		close(got1)
		if err := l.Unlock(1); err != nil {
			t.Error(err)
		}
	}()
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := l.Lock(0); err != nil {
					t.Error(err)
					return
				}
				if err := l.Unlock(0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-got1:
	default:
		t.Fatal("node 1 starved")
	}
}

// The §5 claim: cohorting reduces cross-node coherence traffic per
// acquisition compared to a single global ticket lock under clustered
// contention.
func TestCohortLockReducesGlobalTraffic(t *testing.T) {
	const nodes = 4
	const threads = 4
	const iters = 25

	run := func(useCohort bool) (invalidationsPerAcq float64) {
		d := mustDir(t, 64, 4096)
		var lock interface {
			Lock(NodeID) error
			Unlock(NodeID) error
		}
		if useCohort {
			ns := make([]NodeID, nodes)
			for i := range ns {
				ns[i] = NodeID(i)
			}
			cl, err := NewCohortLock(d, 0, ns, 16)
			if err != nil {
				t.Fatal(err)
			}
			lock = cl
		} else {
			lock = NewTicketLock(d, 0)
		}
		var wg sync.WaitGroup
		for n := 0; n < nodes; n++ {
			for th := 0; th < threads; th++ {
				n := NodeID(n)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if err := lock.Lock(n); err != nil {
							t.Error(err)
							return
						}
						time.Sleep(20 * time.Microsecond) // sustain contention
						if err := lock.Unlock(n); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
		}
		wg.Wait()
		total := float64(nodes * threads * iters)
		return float64(d.Stats().Invalidations) / total
	}

	ticket := run(false)
	cohort := run(true)
	if cohort >= ticket {
		t.Fatalf("cohort lock did not reduce invalidations: %.2f vs ticket %.2f per acquisition",
			cohort, ticket)
	}
}
