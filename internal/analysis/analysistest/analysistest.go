// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against `// want "re"`
// annotations, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only.
//
// Layout: testdata/src/<pkg>/*.go, one directory per fixture package;
// the directory path below src is the package's import path, so a
// fixture can exercise path-gated analyzers (e.g. src/internal/sim).
// A `// want "re1" "re2"` comment expects one diagnostic per quoted
// regexp on its line; lines without a want expect no diagnostics.
// Suppression directives (//lint:ignore) are honored exactly as in the
// driver, so fixtures can assert them too.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/summary"
)

// Run loads each fixture package in order (later fixtures may import
// earlier ones), applies a, and reports mismatches against the // want
// annotations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	local := make(map[string]*types.Package)
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkg))
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("fixture %s: %v", pkg, err)
		}
		unit, err := typeCheck(fset, pkg, files, local)
		if err != nil {
			t.Fatalf("fixture %s: %v", pkg, err)
		}
		local[pkg] = unit.Types
		diags, err := unit.Run(a)
		if err != nil {
			t.Fatalf("fixture %s: running %s: %v", pkg, a.Name, err)
		}
		checkWants(t, fset, files, diags)
	}
}

// RunProgram loads all fixture packages together (in order; later
// fixtures may import earlier ones), builds the whole-program summary
// over them, applies the program analyzer, and checks its diagnostics —
// which may land in any fixture file — against the combined // want
// annotations. Witness chains are carried on the diagnostics' Related
// steps; want regexps match the main message only.
func RunProgram(t *testing.T, testdata string, a *summary.ProgramAnalyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	local := make(map[string]*types.Package)
	var units []*analysis.Unit
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkg))
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("fixture %s: %v", pkg, err)
		}
		unit, err := typeCheck(fset, pkg, files, local)
		if err != nil {
			t.Fatalf("fixture %s: %v", pkg, err)
		}
		local[pkg] = unit.Types
		units = append(units, unit)
		allFiles = append(allFiles, files...)
	}
	prog := summary.Build(units)
	diags, err := prog.Run(a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, fset, allFiles, diags)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

func typeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, local map[string]*types.Package) (*analysis.Unit, error) {
	var need []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			if _, ok := local[path]; !ok {
				need = append(need, path)
			}
		}
	}
	exports, err := exportData(need)
	if err != nil {
		return nil, err
	}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var terrs []string
	conf := types.Config{
		Importer: &localFirst{local: local, gc: gc},
		Error: func(err error) {
			if len(terrs) < 10 {
				terrs = append(terrs, err.Error())
			}
		},
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture does not type-check:\n  %s", strings.Join(terrs, "\n  "))
	}
	return &analysis.Unit{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

type localFirst struct {
	local map[string]*types.Package
	gc    types.Importer
}

func (i *localFirst) Import(path string) (*types.Package, error) {
	if p, ok := i.local[path]; ok {
		return p, nil
	}
	return i.gc.Import(path)
}

func (i *localFirst) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return i.Import(path)
}

var (
	exportMu    sync.Mutex
	exportCache = make(map[string]string)
)

// exportData maps each import path (plus its transitive dependencies) to
// a compiled export-data file, via `go list -export`. Results are cached
// for the test process.
func exportData(paths []string) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(exportCache))
	for k, v := range exportCache {
		out[k] = v
	}
	return out, nil
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := fset.Position(c.Pos())
				qs := quoted.FindAllString(text, -1)
				if len(qs) == 0 {
					t.Errorf("%s: malformed want comment (no quoted regexps)", pos)
					continue
				}
				for _, q := range qs {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want string %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, s, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
