// Package addr implements the LMP global address space and the paper's
// two-step translation scheme (§5 "Address translation"): a logical
// address first resolves through a coarse-grained, globally replicated
// slice map to an owning server, then through that server's fine-grained
// local map to a physical offset. Because sharing and migration happen at
// slice granularity, migrating a buffer re-binds its slices to a new owner
// without changing any logical address.
package addr

import (
	"errors"
	"fmt"
	"sync"
)

// Logical is an address in the pool's global address space.
type Logical uint64

// ServerID identifies a server participating in the pool.
type ServerID int

// NoServer marks an unmapped slice.
const NoServer ServerID = -1

// SliceShift selects the coarse-map granularity: 2MiB slices, large enough
// that the replicated coarse map for a 100TB pool stays a few hundred MB.
const SliceShift = 21

// SliceSize is the coarse translation granularity in bytes.
const SliceSize = 1 << SliceShift

// SliceOf returns the slice index containing a.
func SliceOf(a Logical) uint64 { return uint64(a) >> SliceShift }

// SliceBase returns the first logical address of slice s.
func SliceBase(s uint64) Logical { return Logical(s << SliceShift) }

// Range is a contiguous span of logical addresses.
type Range struct {
	Start Logical
	Size  int64
}

// End reports the first address past the range.
func (r Range) End() Logical { return r.Start + Logical(r.Size) }

// Contains reports whether a lies in the range.
func (r Range) Contains(a Logical) bool { return a >= r.Start && a < r.End() }

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool { return r.Start < o.End() && o.Start < r.End() }

func (r Range) String() string { return fmt.Sprintf("[%#x,%#x)", uint64(r.Start), uint64(r.End())) }

// Location is the physical side of a translation: a server and a byte
// offset within that server's shared region.
type Location struct {
	Server ServerID
	Offset int64
}

// ErrUnmapped reports a translation of an address no server owns.
var ErrUnmapped = errors.New("addr: logical address is unmapped")

// GlobalMap is the coarse slice→server directory. Every server holds a
// replica; binding changes bump a version so stale replicas are detectable.
// It is safe for concurrent use.
type GlobalMap struct {
	mu      sync.RWMutex
	slices  []ServerID
	version uint64
}

// NewGlobalMap returns an empty map.
func NewGlobalMap() *GlobalMap { return &GlobalMap{} }

// Version reports the current binding version; it increases on every
// Bind call.
func (g *GlobalMap) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// Bind assigns every slice overlapping r to owner. Binding to NoServer
// unmaps. Partial-slice ranges are rejected: callers must allocate at
// slice granularity so migration cannot split ownership below the coarse
// granularity.
func (g *GlobalMap) Bind(r Range, owner ServerID) error {
	if r.Size <= 0 {
		return fmt.Errorf("addr: bind of empty range %v", r)
	}
	if uint64(r.Start)%SliceSize != 0 || uint64(r.Size)%SliceSize != 0 {
		return fmt.Errorf("addr: range %v is not slice-aligned", r)
	}
	first := SliceOf(r.Start)
	last := SliceOf(r.End() - 1)
	g.mu.Lock()
	defer g.mu.Unlock()
	if need := int(last + 1); need > len(g.slices) {
		grown := make([]ServerID, need)
		copy(grown, g.slices)
		for i := len(g.slices); i < need; i++ {
			grown[i] = NoServer
		}
		g.slices = grown
	}
	for s := first; s <= last; s++ {
		g.slices[s] = owner
	}
	g.version++
	return nil
}

// Owner resolves the server owning address a.
func (g *GlobalMap) Owner(a Logical) (ServerID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := SliceOf(a)
	if s >= uint64(len(g.slices)) || g.slices[s] == NoServer {
		return NoServer, fmt.Errorf("%w: %#x", ErrUnmapped, uint64(a))
	}
	return g.slices[s], nil
}

// OwnerOfSlice resolves a slice index directly.
func (g *GlobalMap) OwnerOfSlice(s uint64) (ServerID, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if s >= uint64(len(g.slices)) || g.slices[s] == NoServer {
		return NoServer, fmt.Errorf("%w: slice %d", ErrUnmapped, s)
	}
	return g.slices[s], nil
}

// SlicesOwnedBy returns the slice indices bound to owner, ascending.
func (g *GlobalMap) SlicesOwnedBy(owner ServerID) []uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []uint64
	for i, s := range g.slices {
		if s == owner {
			out = append(out, uint64(i))
		}
	}
	return out
}

// Snapshot returns a copy of the slice table (a replica as a server would
// hold it) together with its version.
func (g *GlobalMap) Snapshot() ([]ServerID, uint64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	cp := make([]ServerID, len(g.slices))
	copy(cp, g.slices)
	return cp, g.version
}

// LocalMap is a server's fine-grained side of the two-step translation:
// logical slice → offset of that slice's backing in the server's shared
// region. Implementations must be safe for concurrent use.
type LocalMap interface {
	// MapSlice binds logical slice s to local byte offset off.
	MapSlice(s uint64, off int64)
	// UnmapSlice removes the binding, reporting whether it existed.
	UnmapSlice(s uint64) bool
	// LookupSlice resolves slice s to its local offset.
	LookupSlice(s uint64) (int64, bool)
}

// Translator performs the full two-step translation.
type Translator struct {
	Global *GlobalMap
	// Locals holds each server's fine map.
	Locals map[ServerID]LocalMap
}

// Translate resolves a logical address to its physical location.
func (t *Translator) Translate(a Logical) (Location, error) {
	owner, err := t.Global.Owner(a)
	if err != nil {
		return Location{}, err
	}
	lm := t.Locals[owner]
	if lm == nil {
		return Location{}, fmt.Errorf("addr: no local map for server %d", owner)
	}
	base, ok := lm.LookupSlice(SliceOf(a))
	if !ok {
		return Location{}, fmt.Errorf("%w: slice %d missing on server %d", ErrUnmapped, SliceOf(a), owner)
	}
	return Location{Server: owner, Offset: base + int64(uint64(a)%SliceSize)}, nil
}
