package sentinelerr_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelerr.Analyzer, "sentinelerr")
}
