package simtime_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/simtime"
)

func TestSimTime(t *testing.T) {
	analysistest.Run(t, "testdata", simtime.Analyzer, "internal/sim", "notsim")
}
