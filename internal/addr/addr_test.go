package addr

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestSliceArithmetic(t *testing.T) {
	if SliceOf(0) != 0 || SliceOf(SliceSize-1) != 0 || SliceOf(SliceSize) != 1 {
		t.Fatal("SliceOf boundaries wrong")
	}
	if SliceBase(3) != Logical(3*SliceSize) {
		t.Fatal("SliceBase wrong")
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Start: 100, Size: 50}
	if r.End() != 150 {
		t.Fatal("End wrong")
	}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Fatal("Contains wrong")
	}
	if !r.Overlaps(Range{Start: 149, Size: 10}) || r.Overlaps(Range{Start: 150, Size: 10}) {
		t.Fatal("Overlaps wrong")
	}
}

func TestGlobalMapBindAndResolve(t *testing.T) {
	g := NewGlobalMap()
	r := Range{Start: 0, Size: 4 * SliceSize}
	if err := g.Bind(r, 2); err != nil {
		t.Fatal(err)
	}
	owner, err := g.Owner(3 * SliceSize)
	if err != nil || owner != 2 {
		t.Fatalf("owner = %v, %v", owner, err)
	}
	if _, err := g.Owner(4 * SliceSize); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("beyond binding: %v", err)
	}
}

func TestGlobalMapRejectsMisaligned(t *testing.T) {
	g := NewGlobalMap()
	if err := g.Bind(Range{Start: 100, Size: SliceSize}, 0); err == nil {
		t.Fatal("misaligned start accepted")
	}
	if err := g.Bind(Range{Start: 0, Size: 100}, 0); err == nil {
		t.Fatal("misaligned size accepted")
	}
	if err := g.Bind(Range{Start: 0, Size: 0}, 0); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestGlobalMapRebindPreservesAddresses(t *testing.T) {
	// The §5 requirement: migration re-binds ownership, logical addresses
	// stay valid.
	g := NewGlobalMap()
	r := Range{Start: 0, Size: 8 * SliceSize}
	if err := g.Bind(r, 0); err != nil {
		t.Fatal(err)
	}
	v1 := g.Version()
	// Migrate slices 2..3 to server 1.
	if err := g.Bind(Range{Start: 2 * SliceSize, Size: 2 * SliceSize}, 1); err != nil {
		t.Fatal(err)
	}
	if g.Version() <= v1 {
		t.Fatal("version did not advance on rebind")
	}
	for a, want := range map[Logical]ServerID{
		0:                  0,
		2*SliceSize + 123:  1,
		3*SliceSize + 4000: 1,
		4 * SliceSize:      0,
	} {
		got, err := g.Owner(a)
		if err != nil || got != want {
			t.Fatalf("owner(%#x) = %v,%v want %v", uint64(a), got, err, want)
		}
	}
}

func TestGlobalMapUnbind(t *testing.T) {
	g := NewGlobalMap()
	if err := g.Bind(Range{Start: 0, Size: SliceSize}, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Bind(Range{Start: 0, Size: SliceSize}, NoServer); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Owner(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unbound owner: %v", err)
	}
}

func TestSlicesOwnedBy(t *testing.T) {
	g := NewGlobalMap()
	if err := g.Bind(Range{Start: 0, Size: 4 * SliceSize}, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Bind(Range{Start: SliceSize, Size: SliceSize}, 1); err != nil {
		t.Fatal(err)
	}
	got := g.SlicesOwnedBy(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("slices owned by 0: %v", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	g := NewGlobalMap()
	if err := g.Bind(Range{Start: 0, Size: SliceSize}, 0); err != nil {
		t.Fatal(err)
	}
	snap, ver := g.Snapshot()
	if ver != 1 || len(snap) != 1 || snap[0] != 0 {
		t.Fatalf("snapshot = %v v%d", snap, ver)
	}
	snap[0] = 9
	if owner, _ := g.Owner(0); owner != 0 {
		t.Fatal("snapshot mutation leaked into map")
	}
}

type fakeLocal struct {
	mu sync.Mutex
	m  map[uint64]int64
}

func newFakeLocal() *fakeLocal { return &fakeLocal{m: make(map[uint64]int64)} }

func (f *fakeLocal) MapSlice(s uint64, off int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[s] = off
}
func (f *fakeLocal) UnmapSlice(s uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.m[s]
	delete(f.m, s)
	return ok
}
func (f *fakeLocal) LookupSlice(s uint64) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	off, ok := f.m[s]
	return off, ok
}

func TestTranslatorTwoStep(t *testing.T) {
	g := NewGlobalMap()
	if err := g.Bind(Range{Start: 0, Size: 2 * SliceSize}, 1); err != nil {
		t.Fatal(err)
	}
	lm := newFakeLocal()
	lm.MapSlice(0, 0)
	lm.MapSlice(1, 5*SliceSize)
	tr := &Translator{Global: g, Locals: map[ServerID]LocalMap{1: lm}}

	loc, err := tr.Translate(Logical(SliceSize + 77))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Server != 1 || loc.Offset != 5*SliceSize+77 {
		t.Fatalf("loc = %+v", loc)
	}
}

func TestTranslatorErrors(t *testing.T) {
	g := NewGlobalMap()
	tr := &Translator{Global: g, Locals: map[ServerID]LocalMap{}}
	if _, err := tr.Translate(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped: %v", err)
	}
	if err := g.Bind(Range{Start: 0, Size: SliceSize}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Translate(0); err == nil {
		t.Fatal("missing local map accepted")
	}
	tr.Locals[3] = newFakeLocal()
	if _, err := tr.Translate(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("missing slice: %v", err)
	}
}

func TestGlobalMapConcurrent(t *testing.T) {
	g := NewGlobalMap()
	if err := g.Bind(Range{Start: 0, Size: 64 * SliceSize}, 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := uint64((w*100 + i) % 64)
				_ = g.Bind(Range{Start: SliceBase(s), Size: SliceSize}, ServerID(w))
				if _, err := g.Owner(SliceBase(s)); err != nil {
					t.Errorf("owner: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Property: after binding, every address in the range resolves to the
// owner; slice-granular rebinding never leaves a hole.
func TestBindResolveProperty(t *testing.T) {
	f := func(sliceIdx uint8, count uint8, owner uint8) bool {
		g := NewGlobalMap()
		n := int64(count%16) + 1
		r := Range{Start: SliceBase(uint64(sliceIdx)), Size: n * SliceSize}
		if err := g.Bind(r, ServerID(owner)); err != nil {
			return false
		}
		for a := r.Start; a < r.End(); a += SliceSize / 2 {
			got, err := g.Owner(a)
			if err != nil || got != ServerID(owner) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
