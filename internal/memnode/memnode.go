// Package memnode implements a single server's memory for the LMP runtime:
// a sparse, page-granular byte store covering the server's DRAM, split into
// a private region and a shared region whose boundary can move at runtime
// (the paper's ratio flexibility), plus per-page access statistics feeding
// the migration and sizing policies.
//
// Pages are materialized on first write, so a node can model tens of
// gigabytes of capacity while tests touch only megabytes.
package memnode

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PageSize is the translation and tracking granularity, 4KiB as in the
// host page tables the paper's runtime would manage.
const PageSize = 4096

// ErrOutOfRange reports an access beyond the node's capacity.
var ErrOutOfRange = errors.New("memnode: access out of range")

// ErrShrinkBelowUse reports a shared-region shrink below allocated bytes.
var ErrShrinkBelowUse = errors.New("memnode: cannot shrink shared region below allocated bytes")

// PageStats holds access statistics for one page.
type PageStats struct {
	Page        int64
	LocalReads  uint64
	RemoteReads uint64
	Writes      uint64
	// Heat is a decaying activity counter: incremented per access,
	// halved by Decay. Remote accesses add extra weight because they are
	// the ones migration can eliminate.
	Heat uint64
	// Accessed is the NUMA-style access bit, cleared by ClearAccessBits.
	Accessed bool
}

// Node is one server's DRAM. It is safe for concurrent use.
type Node struct {
	name     string
	capacity int64

	mu     sync.RWMutex
	shared int64 // bytes [0, shared) are the shared region
	inUse  int64 // shared bytes currently allocated (maintained by the allocator)
	pages  map[int64][]byte
	stats  map[int64]*PageStats
}

// New returns a node with the given capacity and initial shared-region
// size. sharedBytes must be in [0, capacity].
func New(name string, capacity, sharedBytes int64) (*Node, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("memnode: capacity %d must be positive", capacity)
	}
	if sharedBytes < 0 || sharedBytes > capacity {
		return nil, fmt.Errorf("memnode: shared %d outside [0,%d]", sharedBytes, capacity)
	}
	return &Node{
		name:     name,
		capacity: capacity,
		shared:   sharedBytes,
		pages:    make(map[int64][]byte),
		stats:    make(map[int64]*PageStats),
	}, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Capacity reports total DRAM bytes.
func (n *Node) Capacity() int64 { return n.capacity }

// SharedBytes reports the current shared-region size.
func (n *Node) SharedBytes() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.shared
}

// PrivateBytes reports capacity outside the shared region.
func (n *Node) PrivateBytes() int64 { return n.capacity - n.SharedBytes() }

// InUse reports shared bytes currently allocated.
func (n *Node) InUse() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.inUse
}

// Reserve records alloc bytes as allocated in the shared region. It fails
// if the region would overflow. Negative alloc releases bytes.
func (n *Node) Reserve(alloc int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := n.inUse + alloc
	if next < 0 {
		return fmt.Errorf("memnode: release below zero (%d)", next)
	}
	if next > n.shared {
		return fmt.Errorf("memnode: reserve %d exceeds shared region %d (in use %d)", alloc, n.shared, n.inUse)
	}
	n.inUse = next
	return nil
}

// Resize moves the private/shared boundary. Growing is always allowed up
// to capacity; shrinking fails if allocated bytes would not fit.
func (n *Node) Resize(sharedBytes int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sharedBytes < 0 || sharedBytes > n.capacity {
		return fmt.Errorf("memnode: resize to %d outside [0,%d]", sharedBytes, n.capacity)
	}
	if sharedBytes < n.inUse {
		return fmt.Errorf("%w: want %d, in use %d", ErrShrinkBelowUse, sharedBytes, n.inUse)
	}
	n.shared = sharedBytes
	return nil
}

func (n *Node) checkRange(off int64, length int) error {
	if off < 0 || length < 0 || off+int64(length) > n.capacity {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+int64(length), n.capacity)
	}
	return nil
}

// ReadAt copies len(p) bytes at offset off into p. Unmaterialized pages
// read as zeros.
func (n *Node) ReadAt(p []byte, off int64) error {
	if err := n.checkRange(off, len(p)); err != nil {
		return err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	for done := 0; done < len(p); {
		page := (off + int64(done)) / PageSize
		po := int((off + int64(done)) % PageSize)
		chunk := PageSize - po
		if rem := len(p) - done; rem < chunk {
			chunk = rem
		}
		if data := n.pages[page]; data != nil {
			copy(p[done:done+chunk], data[po:po+chunk])
		} else {
			for i := done; i < done+chunk; i++ {
				p[i] = 0
			}
		}
		done += chunk
	}
	return nil
}

// WriteAt copies p into the node at offset off, materializing pages.
func (n *Node) WriteAt(p []byte, off int64) error {
	if err := n.checkRange(off, len(p)); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for done := 0; done < len(p); {
		page := (off + int64(done)) / PageSize
		po := int((off + int64(done)) % PageSize)
		chunk := PageSize - po
		if rem := len(p) - done; rem < chunk {
			chunk = rem
		}
		data := n.pages[page]
		if data == nil {
			data = make([]byte, PageSize)
			n.pages[page] = data
		}
		copy(data[po:po+chunk], p[done:done+chunk])
		done += chunk
	}
	return nil
}

// DropPage discards a page's contents and statistics (used after
// migration moves it away).
func (n *Node) DropPage(page int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.pages, page)
	delete(n.stats, page)
}

// DropRange discards the contents and statistics of every page fully
// contained in [off, off+length) — the bulk form used when a whole slice
// migrates away. Partially covered pages at the edges are kept.
func (n *Node) DropRange(off, length int64) {
	if length <= 0 {
		return
	}
	first := (off + PageSize - 1) / PageSize
	last := (off + length) / PageSize // exclusive
	n.mu.Lock()
	defer n.mu.Unlock()
	for p := first; p < last; p++ {
		delete(n.pages, p)
		delete(n.stats, p)
	}
}

// MaterializedPages reports how many pages hold data.
func (n *Node) MaterializedPages() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.pages)
}

// RecordAccess updates statistics for the page containing off. remote
// marks the access as issued by another server; write marks stores.
func (n *Node) RecordAccess(off int64, remote, write bool) {
	page := off / PageSize
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.stats[page]
	if st == nil {
		st = &PageStats{Page: page}
		n.stats[page] = st
	}
	st.Accessed = true
	switch {
	case write:
		st.Writes++
		st.Heat++
	case remote:
		st.RemoteReads++
		// Remote reads are what locality balancing can win back; weight
		// them higher so hot remote pages surface first.
		st.Heat += 4
	default:
		st.LocalReads++
		st.Heat++
	}
}

// Stats returns a copy of the statistics for the page containing off.
func (n *Node) Stats(off int64) PageStats {
	page := off / PageSize
	n.mu.RLock()
	defer n.mu.RUnlock()
	if st := n.stats[page]; st != nil {
		return *st
	}
	return PageStats{Page: page}
}

// HottestPages returns up to k pages by descending heat.
func (n *Node) HottestPages(k int) []PageStats {
	n.mu.RLock()
	all := make([]PageStats, 0, len(n.stats))
	for _, st := range n.stats {
		all = append(all, *st)
	}
	n.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Heat != all[j].Heat {
			return all[i].Heat > all[j].Heat
		}
		return all[i].Page < all[j].Page
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Decay halves every page's heat, aging out stale hotness.
func (n *Node) Decay() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, st := range n.stats {
		st.Heat /= 2
	}
}

// ClearAccessBits clears the NUMA-style access bits and reports how many
// pages had been touched since the last clear.
func (n *Node) ClearAccessBits() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	touched := 0
	for _, st := range n.stats {
		if st.Accessed {
			touched++
			st.Accessed = false
		}
	}
	return touched
}
