package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/failure"
)

// crashInjector is a FabricDelay hook that counts slice-sized transfers
// and crashes a chosen server when the count crosses a programmed
// threshold. The engine calls the hook outside every lock (only the
// Serialized baseline holds locks across it, and these tests never use
// Serialized mode), so calling p.Crash — which takes p.mu — from inside
// the hook is safe. All state is atomic because repair workers invoke
// the hook concurrently.
type crashInjector struct {
	calls  atomic.Int64
	at     atomic.Int64 // crash when calls crosses this; <0 disarms
	target atomic.Int64
	pool   atomic.Pointer[Pool]
	fired  atomic.Bool
	sleep  time.Duration
}

func newCrashInjector(sleep time.Duration) *crashInjector {
	ci := &crashInjector{sleep: sleep}
	ci.at.Store(-1)
	return ci
}

// arm programs the next crash: after n more hook calls, server s dies.
func (ci *crashInjector) arm(p *Pool, s addr.ServerID, n int64) {
	ci.pool.Store(p)
	ci.target.Store(int64(s))
	ci.fired.Store(false)
	ci.at.Store(ci.calls.Load() + n)
}

func (ci *crashInjector) hook() {
	n := ci.calls.Add(1)
	if at := ci.at.Load(); at >= 0 && n >= at && ci.fired.CompareAndSwap(false, true) {
		if p := ci.pool.Load(); p != nil {
			// Error ignored: the target may already be dead in racy
			// schedules, which is fine — the injector fires at most once.
			_ = p.Crash(addr.ServerID(ci.target.Load()))
		}
	}
	if ci.sleep > 0 {
		time.Sleep(ci.sleep)
	}
}

// errClass buckets an error for the deterministic trace: the replay
// comparison needs stable strings, not full error text (which can embed
// offsets that are themselves part of what determinism guarantees, but
// keeping the trace coarse makes failures readable).
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrServerDead):
		return "dead"
	default:
		return "err"
	}
}

// repairScenario drives one fixed fault schedule — writes, a crash, a
// migration aimed at the dead server, a repair with a second crash
// injected mid-repair, then repair of the second victim — and returns a
// trace of every step. With Parallelism 1 the engine repairs in
// snapshot order and the trace must be bit-identical across runs.
func repairScenario(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&log, format+"\n", args...)
	}

	const servers = 6
	ci := newCrashInjector(0)
	cfg := Config{
		Protection: failure.Policy{Scheme: failure.Replicate, Copies: 3},
		Repair:     RepairConfig{Parallelism: 1, FabricDelay: ci.hook},
	}
	for i := 0; i < servers; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Capacity:    16 * SliceSize,
			SharedBytes: 16 * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type shadow struct {
		buf     *Buffer
		content []byte
	}
	var bufs []*shadow
	for i := 0; i < 4; i++ {
		size := int64(2*SliceSize - rng.Intn(SliceSize/2))
		b, err := p.Alloc(size, addr.ServerID(rng.Intn(servers)))
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		bufs = append(bufs, &shadow{buf: b, content: make([]byte, size)})
		line("alloc %d size=%d", i, size)
	}

	dead := map[addr.ServerID]bool{}
	liveServer := func() addr.ServerID {
		for {
			s := addr.ServerID(rng.Intn(servers))
			if !dead[s] {
				return s
			}
		}
	}
	writeOp := func(tag string, op int) {
		sb := bufs[rng.Intn(len(bufs))]
		off := rng.Intn(len(sb.content))
		n := rng.Intn(len(sb.content)-off) + 1
		data := make([]byte, n)
		rng.Read(data)
		err := p.Write(liveServer(), sb.buf.Addr()+addr.Logical(off), data)
		line("%s %d off=%d n=%d %s", tag, op, off, n, errClass(err))
		if err == nil {
			copy(sb.content[off:], data)
		}
	}

	for op := 0; op < 24; op++ {
		writeOp("write", op)
	}

	victim, err := p.OwnerOf(bufs[0].buf.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(victim); err != nil {
		t.Fatal(err)
	}
	dead[victim] = true
	line("crash victim=%d", victim)

	// Foreground traffic against the dead owner: writes recover the
	// slice inline, so these must all succeed.
	for op := 0; op < 8; op++ {
		writeOp("postcrash", op)
	}

	// A migration aimed at the dead server must refuse with
	// ErrServerDead, not wedge or corrupt.
	s0 := addr.SliceOf(bufs[2].buf.Addr())
	migErr := p.MigrateSlice(s0, victim)
	line("migrate-to-dead %s", errClass(migErr))
	if !errors.Is(migErr, ErrServerDead) {
		t.Fatalf("MigrateSlice to dead server: got %v, want ErrServerDead", migErr)
	}

	// Second victim dies three transfers into the first repair. The
	// injector fires from inside the engine's fabric-delay hook, which
	// runs outside all locks.
	victim2 := (victim + 1) % servers
	ci.arm(p, victim2, 3)
	rec, err := p.RepairServer(victim)
	dead[victim2] = true
	line("repair victim=%d recovered=%d %s", victim, rec, errClass(err))

	rec2, err2 := p.RepairServer(victim2)
	line("repair victim2=%d recovered=%d %s", victim2, rec2, errClass(err2))

	// A second crash can strand work from the first repair (a rebuild
	// re-homed onto victim2 in the window before it died); sweep until
	// both repairs run clean so the final state is fully re-protected.
	for i := 0; i < 4; i++ {
		_, e1 := p.RepairServer(victim)
		_, e2 := p.RepairServer(victim2)
		if e1 == nil && e2 == nil {
			break
		}
	}

	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repairs: %v", err)
	}
	h := fnv.New64a()
	for i, sb := range bufs {
		got := make([]byte, len(sb.content))
		if err := p.Read(liveServer(), sb.buf.Addr(), got); err != nil {
			t.Fatalf("readback buf %d: %v", i, err)
		}
		if !bytes.Equal(got, sb.content) {
			t.Fatalf("readback buf %d: stale or corrupt bytes after repair", i)
		}
		h.Write(got)
	}
	line("readback hash=%016x", h.Sum64())
	return log.String()
}

// TestChaosRepairDeterministicReplay runs the fixed fault schedule twice
// per seed and requires bit-identical traces: with Parallelism 1 the
// engine's snapshot-order repair, its placement decisions, and the
// injected second crash must all replay exactly.
func TestChaosRepairDeterministicReplay(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			a := repairScenario(t, seed)
			b := repairScenario(t, seed)
			if a != b {
				t.Fatalf("trace diverged across identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
		})
	}
}

// TestChaosRepairConcurrentForeground runs crash + parallel RepairServer
// concurrently with foreground writes, read-verifies, and migrations
// from four workers, each owning a disjoint buffer with a private
// shadow model. Every read that succeeds must return the worker's own
// last write — a stale read means a commit window published a backing
// before its bytes were complete. A second server is crashed from
// inside the repair's fabric-delay hook to exercise the mid-repair
// failure path.
func TestChaosRepairConcurrentForeground(t *testing.T) {
	const (
		servers = 8
		workers = 4
		iters   = 300
	)
	ci := newCrashInjector(50 * time.Microsecond)
	cfg := Config{
		Protection: failure.Policy{Scheme: failure.Replicate, Copies: 3},
		Repair:     RepairConfig{Parallelism: 4, FabricDelay: ci.hook},
	}
	for i := 0; i < servers; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Capacity:    24 * SliceSize,
			SharedBytes: 24 * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type worker struct {
		buf     *Buffer
		content []byte
		rng     *rand.Rand
	}
	ws := make([]*worker, workers)
	for i := range ws {
		b, err := p.Alloc(2*SliceSize, addr.ServerID(i%servers))
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = &worker{buf: b, content: make([]byte, 2*SliceSize), rng: rand.New(rand.NewSource(int64(1000 + i)))}
	}

	var deadMu sync.Mutex
	dead := map[addr.ServerID]bool{}
	markDead := func(s addr.ServerID) {
		deadMu.Lock()
		dead[s] = true
		deadMu.Unlock()
	}
	liveServer := func(rng *rand.Rand) addr.ServerID {
		deadMu.Lock()
		defer deadMu.Unlock()
		for {
			s := addr.ServerID(rng.Intn(servers))
			if !dead[s] {
				return s
			}
		}
	}

	var wg sync.WaitGroup
	for wi, w := range ws {
		wi, w := wi, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch w.rng.Intn(10) {
				case 0, 1, 2, 3: // write within a single slice (atomic wrt failure)
					slice := w.rng.Intn(2)
					off := slice*SliceSize + w.rng.Intn(SliceSize-4096)
					n := w.rng.Intn(4096) + 1
					data := make([]byte, n)
					w.rng.Read(data)
					if err := p.Write(liveServer(w.rng), w.buf.Addr()+addr.Logical(off), data); err != nil {
						t.Errorf("worker %d iter %d: write: %v", wi, it, err)
						return
					}
					copy(w.content[off:], data)
				case 4, 5, 6, 7: // read + verify own contents
					off := w.rng.Intn(len(w.content) - 1)
					n := w.rng.Intn(len(w.content)-off) + 1
					got := make([]byte, n)
					if err := p.Read(liveServer(w.rng), w.buf.Addr()+addr.Logical(off), got); err != nil {
						t.Errorf("worker %d iter %d: read: %v", wi, it, err)
						return
					}
					if !bytes.Equal(got, w.content[off:off+n]) {
						t.Errorf("worker %d iter %d: STALE READ at off=%d n=%d during repair", wi, it, off, n)
						return
					}
				default: // migrate one of our slices; contention errors are fine
					s := addr.SliceOf(w.buf.Addr()) + uint64(w.rng.Intn(2))
					_ = p.MigrateSlice(s, liveServer(w.rng))
				}
			}
		}()
	}

	// Let the workers build up state, then crash the owner of worker
	// 0's buffer and repair it with the second victim armed to die
	// mid-repair.
	time.Sleep(2 * time.Millisecond)
	victim, err := p.OwnerOf(ws[0].buf.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(victim); err != nil {
		t.Fatal(err)
	}
	markDead(victim)

	victim2 := (victim + 1) % servers
	ci.arm(p, victim2, 10)
	_, _ = p.RepairServer(victim) // may surface ErrServerDead from the second crash
	markDead(victim2)
	_, _ = p.RepairServer(victim2)

	wg.Wait()
	if t.Failed() {
		return
	}

	// Sweep until both repairs run clean: a rebuild may have re-homed
	// onto victim2 in the window before it died.
	for i := 0; i < 8; i++ {
		_, e1 := p.RepairServer(victim)
		_, e2 := p.RepairServer(victim2)
		if e1 == nil && e2 == nil {
			break
		}
		if i == 7 {
			t.Fatalf("repairs did not converge: %v / %v", e1, e2)
		}
	}

	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for wi, w := range ws {
		got := make([]byte, len(w.content))
		if err := p.Read(liveServer(w.rng), w.buf.Addr(), got); err != nil {
			t.Fatalf("worker %d final readback: %v", wi, err)
		}
		if !bytes.Equal(got, w.content) {
			t.Fatalf("worker %d: bytes lost across crash+repair", wi)
		}
	}
}
