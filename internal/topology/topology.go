// Package topology describes memory-pool deployments: the servers, their
// DRAM capacities, how much each contributes to the disaggregated pool, and
// — for physical pools — the separate pool device. It encodes the three
// §4.1 configurations (Logical, Physical cache, Physical no-cache) and the
// cost accounting of §4.2.
package topology

import (
	"errors"
	"fmt"

	"github.com/lmp-project/lmp/internal/memsim"
)

// Kind distinguishes deployment architectures.
type Kind int

const (
	// Logical carves the pool out of each server's DRAM (the paper's
	// proposal).
	Logical Kind = iota
	// PhysicalCache uses a separate pool device; servers use their local
	// DRAM as a cache for pooled data.
	PhysicalCache
	// PhysicalNoCache uses a separate pool device; servers access pooled
	// data directly with no local caching.
	PhysicalNoCache
)

func (k Kind) String() string {
	switch k {
	case Logical:
		return "Logical"
	case PhysicalCache:
		return "Physical cache"
	case PhysicalNoCache:
		return "Physical no-cache"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Server is one host in the deployment.
type Server struct {
	Name string
	// TotalBytes is the DRAM installed in the server.
	TotalBytes int64
	// SharedBytes of TotalBytes are contributed to the pool (logical
	// deployments only; zero for physical).
	SharedBytes int64
	// Cores available for computation.
	Cores int
}

// PrivateBytes reports DRAM reserved for the server's own use.
func (s Server) PrivateBytes() int64 { return s.TotalBytes - s.SharedBytes }

// Deployment is a full memory-pool deployment description.
type Deployment struct {
	Kind    Kind
	Servers []Server
	// PoolBytes is the capacity of the separate pool device (physical
	// deployments only; zero for logical).
	PoolBytes int64
	// Link is the fabric link profile connecting servers (and the pool
	// device) to the switch.
	Link memsim.Profile
	// LocalMem is the DRAM profile inside each server.
	LocalMem memsim.Profile
	// Core describes each CPU core as a traffic source.
	Core memsim.CoreProfile
}

// Validate checks internal consistency.
func (d *Deployment) Validate() error {
	if len(d.Servers) == 0 {
		return errors.New("topology: deployment has no servers")
	}
	for i, s := range d.Servers {
		if s.TotalBytes <= 0 {
			return fmt.Errorf("topology: server %d has no memory", i)
		}
		if s.SharedBytes < 0 || s.SharedBytes > s.TotalBytes {
			return fmt.Errorf("topology: server %d shares %d of %d bytes", i, s.SharedBytes, s.TotalBytes)
		}
		if s.Cores <= 0 {
			return fmt.Errorf("topology: server %d has no cores", i)
		}
	}
	switch d.Kind {
	case Logical:
		if d.PoolBytes != 0 {
			return errors.New("topology: logical deployment must not have a pool device")
		}
	case PhysicalCache, PhysicalNoCache:
		if d.PoolBytes <= 0 {
			return errors.New("topology: physical deployment needs a pool device")
		}
		for i, s := range d.Servers {
			if s.SharedBytes != 0 {
				return fmt.Errorf("topology: physical deployment server %d contributes shared memory", i)
			}
		}
	default:
		return fmt.Errorf("topology: unknown kind %v", d.Kind)
	}
	if d.Link.Bandwidth <= 0 || d.LocalMem.Bandwidth <= 0 {
		return errors.New("topology: missing link or memory profile")
	}
	if d.Core.MLP <= 0 || d.Core.LineBytes <= 0 {
		return errors.New("topology: missing core profile")
	}
	return nil
}

// PoolCapacity reports the bytes available as disaggregated memory.
func (d *Deployment) PoolCapacity() int64 {
	if d.Kind == Logical {
		var t int64
		for _, s := range d.Servers {
			t += s.SharedBytes
		}
		return t
	}
	return d.PoolBytes
}

// TotalMemory reports all DRAM in the deployment, servers plus pool device.
func (d *Deployment) TotalMemory() int64 {
	var t int64
	for _, s := range d.Servers {
		t += s.TotalBytes
	}
	return t + d.PoolBytes
}

// SwitchPorts reports fabric switch ports consumed: one per server, plus
// pool-device ports for physical deployments (the paper notes the
// switch-to-pool link must be provisioned thicker to avoid incast; we
// count it as PoolPortCount ports).
func (d *Deployment) SwitchPorts() int {
	n := len(d.Servers)
	if d.Kind != Logical {
		n += d.PoolPortCount()
	}
	return n
}

// PoolPortCount reports how many switch ports the physical pool device
// needs so its link is not the incast bottleneck: enough to match the
// aggregate of all server links.
func (d *Deployment) PoolPortCount() int {
	if d.Kind == Logical {
		return 0
	}
	return len(d.Servers)
}

// ExtraHardware lists the components a physical pool needs beyond the
// servers (§4.2): chassis, power, controller silicon, rack space.
func (d *Deployment) ExtraHardware() []string {
	if d.Kind == Logical {
		return nil
	}
	return []string{
		"pool chassis + power supply",
		"pool motherboard + CPU/ASIC/FPGA controller",
		"rack space (1U+)",
		fmt.Sprintf("%d extra switch ports", d.PoolPortCount()),
	}
}

// PaperDeployment builds one of the §4.1 microbenchmark configurations:
// 4 servers, 96GB total memory budget, 14 cores on the accessing server.
//   - Logical: 24GB per server, all of it shareable.
//   - Physical: 64GB pool device, 8GB local DRAM per server.
func PaperDeployment(kind Kind, link memsim.Profile) *Deployment {
	d := &Deployment{
		Kind:     kind,
		Link:     link,
		LocalMem: memsim.LocalDRAM(),
		Core:     memsim.DefaultCore(),
	}
	const servers = 4
	for i := 0; i < servers; i++ {
		s := Server{Name: fmt.Sprintf("server%d", i), Cores: 14}
		if kind == Logical {
			s.TotalBytes = 24 * memsim.GB
			s.SharedBytes = 24 * memsim.GB
		} else {
			s.TotalBytes = 8 * memsim.GB
		}
		d.Servers = append(d.Servers, s)
	}
	if kind != Logical {
		d.PoolBytes = 64 * memsim.GB
	}
	return d
}
