// Package workload generates memory access streams for the tests,
// examples, and benchmark harness: sequential scans (the paper's vector
// aggregation), uniform and zipfian random access, and skewed hot-set
// patterns that exercise the migration policy.
package workload

import (
	"fmt"
	"math/rand"
)

// Access is one memory operation in a generated stream.
type Access struct {
	Offset int64
	Size   int
	Write  bool
}

// Generator produces a finite access stream.
type Generator interface {
	// Next returns the next access; ok is false when the stream ends.
	Next() (a Access, ok bool)
	// Reset rewinds the stream to its beginning.
	Reset()
}

// Sequential scans [start, start+total) in stride-sized reads — the §4
// vector-sum traffic pattern of one core.
type Sequential struct {
	Start  int64
	Total  int64
	Stride int

	pos int64
}

// NewSequential returns a sequential scan generator.
func NewSequential(start, total int64, stride int) (*Sequential, error) {
	if total < 0 || stride <= 0 {
		return nil, fmt.Errorf("workload: bad sequential spec total=%d stride=%d", total, stride)
	}
	return &Sequential{Start: start, Total: total, Stride: stride}, nil
}

// Next implements Generator.
func (s *Sequential) Next() (Access, bool) {
	if s.pos >= s.Total {
		return Access{}, false
	}
	sz := int64(s.Stride)
	if rem := s.Total - s.pos; rem < sz {
		sz = rem
	}
	a := Access{Offset: s.Start + s.pos, Size: int(sz)}
	s.pos += sz
	return a, true
}

// Reset implements Generator.
func (s *Sequential) Reset() { s.pos = 0 }

// Uniform issues count accesses of size stride at uniformly random
// stride-aligned offsets in [start, start+span).
type Uniform struct {
	Start  int64
	Span   int64
	Stride int
	Count  int
	Writes float64 // fraction of writes in [0,1]

	seed int64
	rng  *rand.Rand
	done int
}

// NewUniform returns a uniform random access generator with a fixed seed
// for reproducibility.
func NewUniform(start, span int64, stride, count int, writeFrac float64, seed int64) (*Uniform, error) {
	if span <= 0 || stride <= 0 || count < 0 || int64(stride) > span {
		return nil, fmt.Errorf("workload: bad uniform spec span=%d stride=%d count=%d", span, stride, count)
	}
	if writeFrac < 0 || writeFrac > 1 {
		return nil, fmt.Errorf("workload: write fraction %v outside [0,1]", writeFrac)
	}
	u := &Uniform{Start: start, Span: span, Stride: stride, Count: count, Writes: writeFrac, seed: seed}
	u.Reset()
	return u, nil
}

// Next implements Generator.
func (u *Uniform) Next() (Access, bool) {
	if u.done >= u.Count {
		return Access{}, false
	}
	u.done++
	slots := u.Span / int64(u.Stride)
	off := u.Start + u.rng.Int63n(slots)*int64(u.Stride)
	return Access{Offset: off, Size: u.Stride, Write: u.rng.Float64() < u.Writes}, true
}

// Reset implements Generator.
func (u *Uniform) Reset() {
	u.rng = rand.New(rand.NewSource(u.seed))
	u.done = 0
}

// Zipf issues count accesses with zipfian popularity over stride-aligned
// slots — the skewed pattern under which locality balancing pays off.
type Zipf struct {
	Start  int64
	Span   int64
	Stride int
	Count  int
	S      float64 // zipf skew parameter, > 1

	seed int64
	rng  *rand.Rand
	z    *rand.Zipf
	done int
}

// NewZipf returns a zipfian generator. s must be > 1 (rand.Zipf's domain).
func NewZipf(start, span int64, stride, count int, s float64, seed int64) (*Zipf, error) {
	if span <= 0 || stride <= 0 || int64(stride) > span {
		return nil, fmt.Errorf("workload: bad zipf spec span=%d stride=%d", span, stride)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf s=%v must be > 1", s)
	}
	z := &Zipf{Start: start, Span: span, Stride: stride, Count: count, S: s, seed: seed}
	z.Reset()
	return z, nil
}

// Next implements Generator.
func (z *Zipf) Next() (Access, bool) {
	if z.done >= z.Count {
		return Access{}, false
	}
	z.done++
	off := z.Start + int64(z.z.Uint64())*int64(z.Stride)
	return Access{Offset: off, Size: z.Stride}, true
}

// Reset implements Generator.
func (z *Zipf) Reset() {
	z.rng = rand.New(rand.NewSource(z.seed))
	slots := uint64(z.Span / int64(z.Stride))
	if slots == 0 {
		slots = 1
	}
	z.z = rand.NewZipf(z.rng, z.S, 1, slots-1)
	z.done = 0
}

// Partition splits [0, total) into n contiguous chunks, the way the §4
// microbenchmark deals a vector to cores. The first chunk absorbs the
// remainder.
func Partition(total int64, n int) []struct{ Start, Size int64 } {
	if n <= 0 || total <= 0 {
		return nil
	}
	out := make([]struct{ Start, Size int64 }, n)
	base := total / int64(n)
	rem := total - base*int64(n)
	var pos int64
	for i := 0; i < n; i++ {
		sz := base
		if i == 0 {
			sz += rem
		}
		out[i].Start = pos
		out[i].Size = sz
		pos += sz
	}
	return out
}

// Drain runs a generator to exhaustion and returns its accesses (test and
// trace-capture helper).
func Drain(g Generator) []Access {
	var out []Access
	for {
		a, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}
