package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/cache"
	"github.com/lmp-project/lmp/internal/coherence"
	"github.com/lmp-project/lmp/internal/migrate"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// This file wires the node-local hot-page cache and write combiner
// (internal/cache) into the pool's data path — the WithLocalCache
// feature. The paper's §5 "locality balancing" challenge splits into two
// time scales: the cache serves short-term reuse from local DRAM, while
// the migration balancer (BalanceOnce) handles long-term placement; the
// cache feeds its hit counts into the balancer's access matrix so a
// sustained-hot remote slice is still promoted (migrated local) even
// when the cache absorbs its reads.
//
// Coherence protocol. Each node has its own read cache; a dedicated
// page-granular coherence.Directory (separate from the coherent region's
// directory) tracks which nodes cached which page:
//
//   - Fill: under the slice's stripe lock in read mode, the filler reads
//     backing bytes, overlays buffered writes, registers with
//     AcquireRead, and inserts the composed page into its own cache.
//   - Write: under the stripe lock in write mode, the writer calls
//     AcquireWrite and discards every killed holder's copy, then updates
//     its own copy in place. Fills and writes to the same slice are
//     serialized by the stripe lock, so a fill can never insert a page a
//     concurrent writer just invalidated.
//   - Crash: Crash purges the dead node's cache and DropNodes it from
//     the directory — purge only, never write back (copies are clean by
//     construction).
//   - Capacity evictions (cache-side and directory back-invalidation)
//     never write back either; a cache-side eviction is invisible to the
//     directory, which therefore over-approximates holders and issues
//     some no-op invalidations.
//
// Write combining. Small remote writes are buffered in a pool-wide
// combiner and applied later as one vectored write per issuing node.
// Until flushed, the authoritative bytes of a range are
// overlay(backing, flushing batch, pending writes) in that order; every
// read path composes that overlay (fillPageOnce for cached reads, the
// accessSliceOnce/vectoredOnce hooks for direct reads), so an accepted
// write is never invisible and never lost: Release drops pending writes
// with the range, and a crash of the backing owner leaves the buffered
// write to be applied after recovery.
//
// Lock order (extends the package comment's): structural → stripe →
// {ec.mu, wc.mu, directory.mu → cache shard}. The flush mutex precedes
// stripe locks (flushWC → vectored) and is never taken under one.

// CacheConfig configures the optional node-local page cache and write
// combiner (see the v1 WithLocalCache option).
type CacheConfig struct {
	// Enabled turns the cache on.
	Enabled bool
	// CapacityFraction sizes each node's cache as a fraction of that
	// node's private (non-shared) carve-out. Default 0.25. Ignored when
	// CapacityBytes is set.
	CapacityFraction float64
	// CapacityBytes, if nonzero, fixes every node's cache capacity.
	CapacityBytes int64
	// PageSize is the cache page size (power of two dividing SliceSize;
	// default 4096).
	PageSize int64
	// Shards is the per-node shard count (default 16).
	Shards int
	// NoWriteCombine disables the write combiner (reads still cache).
	NoWriteCombine bool
	// WCMaxWrite is the largest single write the combiner absorbs;
	// larger writes go straight to backing. Default 1024, capped at
	// PageSize.
	WCMaxWrite int
	// WCMaxBytes and WCMaxCount trigger a flush when the pending set
	// exceeds either. Defaults 128KiB / 128 writes.
	WCMaxBytes int
	WCMaxCount int
}

func (c *CacheConfig) fillDefaults() {
	if c.PageSize == 0 {
		c.PageSize = cache.DefaultPageSize
	}
	if c.CapacityFraction == 0 {
		c.CapacityFraction = 0.25
	}
	if c.WCMaxWrite == 0 {
		c.WCMaxWrite = 1024
	}
	if c.WCMaxWrite > int(c.PageSize) {
		c.WCMaxWrite = int(c.PageSize)
	}
}

// initCache builds the per-node caches, the page coherence directory,
// and the write combiner. Called from New after the nodes exist.
func (p *Pool) initCache() error {
	cc := p.cfg.Cache
	cc.fillDefaults()
	if cc.PageSize <= 0 || cc.PageSize&(cc.PageSize-1) != 0 || SliceSize%cc.PageSize != 0 {
		return fmt.Errorf("core: cache page size %d must be a power of two dividing the slice size", cc.PageSize)
	}
	p.cacheCfg = cc
	p.pageSize = cc.PageSize
	for ps := cc.PageSize; ps > 1; ps >>= 1 {
		p.pageShift++
	}
	totalPages := int64(0)
	p.caches = make([]*cache.Cache, len(p.nodes))
	for i, node := range p.nodes {
		capBytes := cc.CapacityBytes
		if capBytes == 0 {
			capBytes = int64(cc.CapacityFraction * float64(node.PrivateBytes()))
			if capBytes == 0 {
				// No private carve-out to borrow from: a small default
				// keeps WithLocalCache meaningful on shared-only nodes.
				capBytes = 4 << 20
			}
		}
		c, err := cache.New(cache.Config{CapacityBytes: capBytes, PageSize: cc.PageSize, Shards: cc.Shards})
		if err != nil {
			return err
		}
		p.caches[i] = c
		totalPages += capBytes / cc.PageSize
	}
	// The inclusive snoop filter must comfortably track every resident
	// page across all nodes; 2x slack plus a floor bounds back-
	// invalidation churn.
	dirCap := totalPages * 2
	if dirCap < 1024 {
		dirCap = 1024
	}
	dir, err := coherence.NewDirectory(cc.PageSize, int(dirCap))
	if err != nil {
		return err
	}
	dir.OnBackInvalidate = func(block int64, holders []coherence.NodeID) {
		for _, h := range holders {
			if int(h) >= 0 && int(h) < len(p.caches) {
				p.caches[h].Invalidate(uint64(block))
			}
		}
	}
	p.pageDir = dir
	if !cc.NoWriteCombine {
		p.wc = cache.NewWriteCombiner(cc.PageSize, cc.WCMaxBytes, cc.WCMaxCount)
	}
	p.pagePool = sync.Pool{New: func() any {
		b := make([]byte, cc.PageSize)
		return &b
	}}
	p.cacheFills = p.metrics.Counter("pool.cache.fills")
	p.cacheFlushes = p.metrics.Counter("pool.cache.flushes")
	p.cacheFlushedBytes = p.metrics.Counter("pool.cache.flushed_bytes")
	p.cacheWCWrites = p.metrics.Counter("pool.cache.wc_writes")
	p.cacheInvals = p.metrics.Counter("pool.cache.invalidations")
	p.wcFlushBytesHist = p.metrics.Histogram("pool.cache.flush_bytes")
	return nil
}

// cacheEnabledFor reports whether the cached data path serves requests
// from this node. Out-of-range issuers fall back to the direct path,
// which tolerates them.
func (p *Pool) cacheEnabledFor(from addr.ServerID) bool {
	return p.caches != nil && int(from) >= 0 && int(from) < len(p.caches)
}

// cachedRead is the read path for cache-enabled pools. Reads up to one
// page long are served per page through the cache; larger reads bypass
// it (a streaming read would only churn the clock) but still observe
// buffered writes through the overlay hook in accessSliceOnce. Locally
// backed pages are never admitted — backing DRAM is already local — but
// the hit path does not probe ownership up front: a local read simply
// misses and fillPageOnce serves it directly, so the dominant case (a
// hit on a hot remote page) pays exactly one shard lookup.
func (p *Pool) cachedRead(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, la addr.Logical, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if int64(len(buf)) > p.pageSize {
		return p.directAccess(ctx, sc, from, la, buf, false)
	}
	// Fast path: the read fits one cache page. The resident-hit attempt is
	// made here directly so the dominant case costs one call into the
	// cache and nothing else.
	if cur := uint64(la); int(cur&uint64(p.pageSize-1))+len(buf) <= int(p.pageSize) {
		pg := cur >> p.pageShift
		po := int(cur & uint64(p.pageSize-1))
		if p.caches[from].ReadAt(pg, buf, po) {
			return nil
		}
		return p.fillPage(sc, from, pg, buf, po)
	}
	done := 0
	for done < len(buf) {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		cur := uint64(la) + uint64(done)
		pg := cur >> p.pageShift
		po := int(cur & uint64(p.pageSize-1))
		span := int(p.pageSize) - po
		if rem := len(buf) - done; rem < span {
			span = rem
		}
		if err := p.readPage(sc, from, pg, buf[done:done+span], po); err != nil {
			return err
		}
		done += span
	}
	return nil
}

// readPage serves one intra-page read window through the node's cache,
// filling on miss.
func (p *Pool) readPage(sc telemetry.SpanContext, from addr.ServerID, pg uint64, dst []byte, po int) error {
	if p.caches[from].ReadAt(pg, dst, po) {
		return nil
	}
	return p.fillPage(sc, from, pg, dst, po)
}

// fillPage is the miss path: it fills through fillPageOnce with the same
// crash-recovery retry loop as the direct path. A traced read records
// the miss as a "pool.cache.fill" child span — the hit path records
// nothing, so the span's presence is itself the hit/miss signal.
func (p *Pool) fillPage(sc telemetry.SpanContext, from addr.ServerID, pg uint64, dst []byte, po int) error {
	sp, traced := p.beginChild(sc, "pool.cache.fill")
	if traced {
		sp.Server = int(from)
		sc = sp.Context()
	}
	err := p.fillPageLoop(sc, from, pg, dst, po)
	if traced {
		p.endChild(&sp, len(dst), err)
	}
	return err
}

func (p *Pool) fillPageLoop(sc telemetry.SpanContext, from addr.ServerID, pg uint64, dst []byte, po int) error {
	s := addr.SliceOf(addr.Logical(pg << p.pageShift))
	for attempt := 0; ; attempt++ {
		status, err := p.fillPageOnce(from, s, pg, dst, po)
		switch status {
		case accessOK:
			return nil
		case accessMissing:
			return p.missingSliceError(s)
		case accessDead:
			if attempt >= maxRecoverAttempts {
				return fmt.Errorf("%w: slice %d not recoverable", ErrServerDead, s)
			}
			if err := p.recoverSlice(sc, s); err != nil {
				return err
			}
		default:
			return err
		}
	}
}

// fillPageOnce is the locked body of a cache miss. Under the slice's
// stripe lock in read mode it composes the page's authoritative bytes
// (backing plus buffered-write overlay); for remote pages it registers
// the copy with the page directory and inserts it into the issuer's
// cache. The stripe lock orders fills against invalidating writers
// (which hold it in write mode), so a stale fill cannot overwrite an
// invalidation.
func (p *Pool) fillPageOnce(from addr.ServerID, s, pg uint64, dst []byte, po int) (accessStatus, error) {
	lock := p.stripeFor(s)
	lock.RLock()
	defer lock.RUnlock()
	back := p.lookupSlice(s)
	if back == nil {
		return accessMissing, nil
	}
	if p.isDead(back.server) {
		return accessDead, nil
	}
	node := p.nodes[back.server]
	pageAddr := pg << p.pageShift
	sliceOff := int64(pageAddr - uint64(addr.SliceBase(s)))
	if back.server == from {
		// Local pages are not cached — backing DRAM is already local.
		off := back.offset + sliceOff + int64(po)
		if err := node.ReadAt(dst, off); err != nil {
			return accessFailed, err
		}
		if p.wc != nil {
			p.wc.OverlayRange(pageAddr+uint64(po), dst)
		}
		node.RecordAccess(off, false, false)
		back.counts[from].Add(1)
		p.recordAccessMetrics(from, back.server, s, false, false, len(dst))
		return accessOK, nil
	}
	sp := p.pagePool.Get().(*[]byte)
	scratch := *sp
	if err := node.ReadAt(scratch, back.offset+sliceOff); err != nil {
		p.pagePool.Put(sp)
		return accessFailed, err
	}
	if p.wc != nil {
		p.wc.OverlayRange(pageAddr, scratch)
	}
	if _, err := p.pageDir.AcquireRead(coherence.NodeID(from), int64(pageAddr)); err == nil {
		p.caches[from].Put(pg, scratch)
	}
	copy(dst, scratch[po:po+len(dst)])
	p.pagePool.Put(sp)
	p.cacheFills.Inc()
	node.RecordAccess(back.offset+sliceOff, true, false)
	back.counts[from].Add(1)
	p.recordAccessMetrics(from, back.server, s, true, false, len(dst))
	return accessOK, nil
}

// cachedWrite is the write path for cache-enabled pools: small writes
// whose first slice is remote are absorbed by the write combiner;
// everything else goes to backing directly, after flushing any buffered
// writes that overlap the range (a direct write must not be shadowed by
// an older buffered one).
func (p *Pool) cachedWrite(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, la addr.Logical, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if p.wc != nil && len(data) <= p.cacheCfg.WCMaxWrite {
		if back := p.lookupSlice(addr.SliceOf(la)); back != nil && back.server != from {
			return p.wcWrite(ctx, sc, from, la, data)
		}
	}
	if p.wc != nil && p.wc.PendingInRange(uint64(la), len(data)) {
		if err := p.flushWC(); err != nil {
			return err
		}
	}
	return p.directAccess(ctx, sc, from, la, data, true)
}

// accessWCConflict reports a buffered write refused for partial overlap
// with an existing one; the caller flushes and retries.
const accessWCConflict accessStatus = 100

// wcWrite buffers a small write, slice segment by slice segment.
func (p *Pool) wcWrite(ctx context.Context, sc telemetry.SpanContext, from addr.ServerID, la addr.Logical, data []byte) error {
	shouldFlush := false
	done := 0
	for done < len(data) {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		cur := la + addr.Logical(done)
		s := addr.SliceOf(cur)
		off := int64(uint64(cur) % SliceSize)
		length := int(SliceSize - off)
		if rem := len(data) - done; rem < length {
			length = rem
		}
		if err := p.wcWriteSlice(sc, from, s, uint64(cur), data[done:done+length], &shouldFlush); err != nil {
			return err
		}
		done += length
	}
	if shouldFlush {
		return p.flushWC()
	}
	return nil
}

// wcWriteSlice buffers one intra-slice write, flushing and retrying on
// overlap conflicts.
func (p *Pool) wcWriteSlice(sc telemetry.SpanContext, from addr.ServerID, s uint64, la uint64, part []byte, shouldFlush *bool) error {
	for attempt := 0; ; attempt++ {
		switch p.wcWriteSliceOnce(sc, from, s, la, part, shouldFlush) {
		case accessOK:
			return nil
		case accessMissing:
			return p.missingSliceError(s)
		default: // conflict with a buffered write
			if err := p.flushWC(); err != nil {
				return err
			}
			if attempt >= maxRecoverAttempts {
				// Concurrent writers keep landing on the range; take the
				// direct path (the flush above preserved ordering).
				return p.accessSlice(sc, from, s, int64(la-uint64(addr.SliceBase(s))), part, true)
			}
		}
	}
}

// wcWriteSliceOnce is the locked body of one buffered-write attempt.
// Note a dead backing owner does not block it: the pool accepts the
// bytes now and the flush applies them after recovery re-homes the
// slice — buffered writes survive crashes of servers they never reached.
func (p *Pool) wcWriteSliceOnce(sc telemetry.SpanContext, from addr.ServerID, s uint64, la uint64, part []byte, shouldFlush *bool) accessStatus {
	lock := p.stripeFor(s)
	lock.Lock()
	defer lock.Unlock()
	back := p.lookupSlice(s)
	if back == nil {
		return accessMissing
	}
	ok, fl := p.wc.Add(int(from), la, part)
	if !ok {
		return accessWCConflict
	}
	if fl {
		*shouldFlush = true
	}
	p.applyWriteCoherenceLocked(sc, from, la, part)
	remote := back.server != from
	if !p.isDead(back.server) {
		p.nodes[back.server].RecordAccess(back.offset+int64(la-uint64(addr.SliceBase(s))), remote, true)
	}
	back.counts[from].Add(1)
	p.recordAccessMetrics(from, back.server, s, remote, true, len(part))
	p.cacheWCWrites.Inc()
	return accessOK
}

// applyWriteCoherenceLocked runs the write side of the coherence
// protocol for [la, la+len(data)): acquire exclusive ownership of each
// touched page, discard every killed holder's cached copy, and update
// the writer's own copy in place if resident. Caller holds the covering
// stripe lock(s) in write mode.
func (p *Pool) applyWriteCoherenceLocked(sc telemetry.SpanContext, from addr.ServerID, la uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	sp, traced := p.beginChild(sc, "pool.coherence.write")
	if traced {
		sp.Server = int(from)
	}
	first := la >> p.pageShift
	last := (la + uint64(len(data)) - 1) >> p.pageShift
	for pg := first; pg <= last; pg++ {
		pageAddr := pg << p.pageShift
		killed, err := p.pageDir.AcquireWrite(coherence.NodeID(from), int64(pageAddr))
		if err != nil {
			// Directory failure: fail safe by discarding every other
			// node's copy of the page.
			for n := range p.caches {
				if addr.ServerID(n) != from {
					p.caches[n].Invalidate(pg)
				}
			}
		} else {
			for _, k := range killed {
				if int(k) >= 0 && int(k) < len(p.caches) {
					p.caches[k].Invalidate(pg)
				}
			}
			if len(killed) > 0 {
				p.cacheInvals.Add(uint64(len(killed)))
			}
		}
		if int(from) >= 0 && int(from) < len(p.caches) {
			lo := max(la, pageAddr)
			hi := min(la+uint64(len(data)), pageAddr+uint64(p.pageSize))
			p.caches[from].WriteAt(pg, data[lo-la:hi-la], int(lo-pageAddr))
		}
	}
	if traced {
		p.endChild(&sp, len(data), nil)
	}
}

// purgeSlicePagesLocked discards every node's cached pages of slice s
// and any pending buffered writes into it. Called under the slice's
// stripe lock when the logical range dies (Release).
func (p *Pool) purgeSlicePagesLocked(s uint64) {
	base := uint64(addr.SliceBase(s))
	firstPage := base >> p.pageShift
	pages := uint64(SliceSize) >> p.pageShift
	for n := range p.caches {
		p.caches[n].InvalidateRange(firstPage, pages)
	}
	if p.wc != nil {
		p.wc.DropRange(base, base+uint64(SliceSize))
	}
}

// FlushWriteCombining applies all buffered writes to backing (and their
// replicas/parity). Reads already observe buffered writes; flushing
// matters before operations that bypass the pool's read path entirely.
// It is a no-op on pools without a write combiner.
func (p *Pool) FlushWriteCombining() error {
	if p.wc == nil {
		return nil
	}
	return p.flushWC()
}

// flushWC drains the combiner and applies the batch as one vectored
// write per issuing node. The flush mutex serializes flushes and orders
// strictly before stripe locks (taken inside vectored); the batch stays
// visible to readers until EndFlush, so there is no window where an
// accepted write is in neither the combiner nor backing. The batch is
// pre-coalesced: abutting buffered writes arrive as single runs, so the
// vectored path sees the fewest, largest segments the buffer allows.
func (p *Pool) flushWC() error {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	batch := p.wc.BeginFlushCoalesced()
	if len(batch) == 0 {
		return nil
	}
	// A flush is its own root trace: it applies writes buffered by many
	// earlier (possibly untraced) ops, so no single parent owns it. The
	// flush-size histogram is always on — flushes are rare enough that
	// one Observe per flush is free.
	var sp telemetry.Span
	var fsc telemetry.SpanContext
	traced := p.obs != nil
	if traced {
		sp = p.obs.tracer.Begin(telemetry.SpanContext{}, "pool.wc.flush")
		fsc = sp.Context()
	}
	var order []int
	vecsByFrom := make(map[int][]Vec)
	for _, e := range batch {
		if _, ok := vecsByFrom[e.From]; !ok {
			order = append(order, e.From)
		}
		vecsByFrom[e.From] = append(vecsByFrom[e.From], Vec{Addr: addr.Logical(e.Addr), Data: e.Data})
	}
	var firstErr error
	flushed := 0
	for _, f := range order {
		vecs := vecsByFrom[f]
		if err := p.vectored(nil, fsc, addr.ServerID(f), vecs, true, true); err != nil {
			// The batch hit a range that died mid-flight (released) or an
			// unrecoverable slice: apply entry by entry so one bad range
			// does not sink its neighbours, dropping writes whose logical
			// range is gone.
			for _, v := range vecs {
				if err2 := p.flushOneFallback(addr.ServerID(f), v); err2 != nil && firstErr == nil {
					firstErr = err2
				}
			}
		}
		for _, v := range vecs {
			flushed += len(v.Data)
		}
	}
	p.wc.EndFlush()
	p.cacheFlushes.Inc()
	p.cacheFlushedBytes.Add(uint64(flushed))
	p.wcFlushBytesHist.Observe(float64(flushed))
	if traced {
		p.endChild(&sp, flushed, firstErr)
	}
	return firstErr
}

func (p *Pool) flushOneFallback(from addr.ServerID, v Vec) error {
	err := p.directAccess(nil, telemetry.SpanContext{}, from, v.Addr, v.Data, true)
	if err == nil || errors.Is(err, addr.ErrUnmapped) {
		return nil
	}
	return err
}

// harvestCacheHits drains per-page cache hit counts into matrix samples:
// a hit is an access the balancer would otherwise never see (it touches
// no backing counter), yet it is exactly the signal that a remote slice
// is hot enough to promote.
func (p *Pool) harvestCacheHits(batch []migrate.Sample) []migrate.Sample {
	for n := range p.caches {
		from := addr.ServerID(n)
		p.caches[n].DrainHits(func(page, hits uint64) {
			s := addr.SliceOf(addr.Logical(page << p.pageShift))
			batch = append(batch, migrate.Sample{Slice: uint64(s), From: from, Count: hits})
		})
	}
	return batch
}

// CacheStats aggregates the per-node cache and write-combiner state.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Inserts       uint64 `json:"inserts"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	HotPromotions uint64 `json:"hot_promotions"`
	GhostReadmits uint64 `json:"ghost_readmits"`
	Pages         int    `json:"pages"` // resident pages
	PendingWrites int    `json:"pending_writes"`
	PendingBytes  int    `json:"pending_bytes"`
	Flushes       uint64 `json:"flushes"`
	FlushedBytes  uint64 `json:"flushed_bytes"`
	WCWrites      uint64 `json:"wc_writes"`
	Fills         uint64 `json:"fills"`
}

// HitRate reports hits/(hits+misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats reports cache traffic totals across all nodes. On a pool
// built without WithLocalCache every field is zero.
func (p *Pool) CacheStats() CacheStats {
	var out CacheStats
	if p.caches == nil {
		return out
	}
	for _, c := range p.caches {
		st := c.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Inserts += st.Inserts
		out.Evictions += st.Evictions
		out.Invalidations += st.Invalidations
		out.HotPromotions += st.HotPromotions
		out.GhostReadmits += st.GhostReadmits
		out.Pages += st.Pages
	}
	if p.wc != nil {
		out.PendingWrites = p.wc.PendingCount()
		out.PendingBytes = p.wc.PendingBytes()
	}
	out.Flushes = p.cacheFlushes.Value()
	out.FlushedBytes = p.cacheFlushedBytes.Value()
	out.WCWrites = p.cacheWCWrites.Value()
	out.Fills = p.cacheFills.Value()
	// Mirror the fold into gauges so Snapshot dumps include it.
	p.metrics.Gauge("pool.cache.hits").Set(int64(out.Hits))
	p.metrics.Gauge("pool.cache.misses").Set(int64(out.Misses))
	p.metrics.Gauge("pool.cache.resident_pages").Set(int64(out.Pages))
	return out
}

// PageDirectory exposes the page-cache coherence directory (nil without
// WithLocalCache); tests assert protocol traffic through it.
func (p *Pool) PageDirectory() *coherence.Directory { return p.pageDir }

// checkCacheLocked audits every resident cached page against the
// authoritative bytes (backing plus buffered-write overlay): a diverging
// copy is a coherence bug, a copy of an unmapped slice is a missed purge.
// Caller holds p.mu and must be quiesced with respect to the data path
// (the chaos harness's between-ops oracle position), since the audit
// takes no stripe locks.
func (p *Pool) checkCacheLocked(report func(string, ...any)) {
	type snap struct {
		page uint64
		data []byte
	}
	scratch := make([]byte, p.pageSize)
	for n, c := range p.caches {
		var pages []snap
		c.Each(func(page uint64, data []byte) {
			pages = append(pages, snap{page, append([]byte(nil), data...)})
		})
		for _, e := range pages {
			pageAddr := e.page << p.pageShift
			s := addr.SliceOf(addr.Logical(pageAddr))
			back := p.lookupSlice(s)
			if back == nil {
				report("server %d caches page %d of unmapped slice %d", n, e.page, s)
				continue
			}
			if back.server == addr.ServerID(n) {
				report("server %d caches page %d of its own local slice %d", n, e.page, s)
			}
			if p.isDead(back.server) {
				continue // backing unreadable until recovery rebinds it
			}
			off := back.offset + int64(pageAddr-uint64(addr.SliceBase(s)))
			if err := p.nodes[back.server].ReadAt(scratch, off); err != nil {
				report("server %d cached page %d: backing read failed: %v", n, e.page, err)
				continue
			}
			if p.wc != nil {
				p.wc.OverlayRange(pageAddr, scratch)
			}
			if !bytes.Equal(scratch, e.data) {
				report("server %d cached page %d diverges from authoritative bytes (slice %d)", n, e.page, s)
			}
		}
	}
}
