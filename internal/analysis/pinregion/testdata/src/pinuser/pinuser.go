// Package pinuser exercises the interprocedural reach of pinregion:
// the violations sit two calls below the pinned region, where the
// intra-procedural PR-2 analyzers could not see them.
package pinuser

import (
	"sync"

	"telemetry"
)

var (
	mu    sync.Mutex
	total uint64
)

// Record blocks two calls deep while pinned: Record -> addSlow ->
// flush -> mu.Lock.
func Record(n uint64) {
	h := telemetry.BeginUpdate()
	addSlow(h, n) // want "blocking operation while pinned \\(pin begun on line \\d+\\): .*addSlow.*flush.*Lock"
	telemetry.EndUpdate()
}

func addSlow(h int, n uint64) { flush(n) }

func flush(n uint64) {
	mu.Lock()
	total += n
	mu.Unlock()
}

// Nested re-pins through a helper while already pinned.
func Nested(n uint64) {
	h := telemetry.BeginUpdate()
	_ = h
	pinnedBump(n) // want "nested proc pin while pinned .*pinnedBump"
	telemetry.EndUpdate()
}

func pinnedBump(n uint64) {
	h := telemetry.BeginUpdate()
	_ = h
	_ = n
	telemetry.EndUpdate()
}

// Deferred cleanup runs at function exit, outside the region: clean.
func WithDefer(n uint64) {
	defer flush(n)
	h := telemetry.BeginUpdate()
	_ = h
	telemetry.EndUpdate()
}
