package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/lmp-project/lmp/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("pool.reads.local").Add(7)
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SlowOpNS: -1})
	sp := tracer.Begin(telemetry.SpanContext{}, "pool.read")
	tracer.End(&sp)

	s, err := Serve("127.0.0.1:0", Source{
		Metrics: reg,
		Stats:   func() any { return map[string]int{"answer": 42} },
		Spans:   tracer.Spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "lmp_pool_reads_local 7") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if !strings.Contains(body, "# TYPE lmp_pool_reads_local counter") {
		t.Fatalf("/metrics missing TYPE line: %q", body)
	}

	code, body = get(t, base+"/stats")
	var stats map[string]int
	if code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil || stats["answer"] != 42 {
		t.Fatalf("/stats body %q: %v", body, err)
	}

	code, body = get(t, base+"/spans")
	var spans []telemetry.Span
	if code != 200 {
		t.Fatalf("/spans: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil || len(spans) != 1 || spans[0].Op != "pool.read" {
		t.Fatalf("/spans body %q: %v", body, err)
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestNilSourcesAre404(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Source{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	for _, ep := range []string{"/metrics", "/stats", "/spans"} {
		if code, _ := get(t, base+ep); code != 404 {
			t.Fatalf("%s with nil source: %d, want 404", ep, code)
		}
	}
}
