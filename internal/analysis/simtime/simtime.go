// Package simtime defines an analyzer that forbids wall-clock time in
// the deterministic simulation core. The discrete-event engine's whole
// value (cross-validating the fluid model, reproducible experiments)
// rests on every timestamp flowing through the sim clock; one stray
// time.Now() silently turns a deterministic run into a flaky one.
package simtime

import (
	"go/ast"
	"path/filepath"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
)

// GatedPackages are the import-path suffixes whose packages — test
// files included — must use simulated time exclusively.
var GatedPackages = []string{
	"internal/sim",
	"internal/memsim",
	"internal/fabric",
	"internal/chaos",
}

// GatedFilePrefix gates individual files by basename prefix in any
// package: the discrete-event replay paths (dessim*.go) live inside
// internal/core next to wall-clock code, so they are gated per file.
const GatedFilePrefix = "dessim"

// banned is the set of time functions that read or wait on the wall
// clock. Pure data types (time.Duration, constants) stay allowed.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

var bannedNames = func() []string {
	var names []string
	for n := range banned {
		names = append(names, n)
	}
	return names
}()

// Analyzer is the simtime analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock time (time.Now, time.Sleep, timers) in the deterministic " +
		"simulation packages (internal/sim, internal/memsim, internal/fabric, " +
		"internal/chaos) and in dessim*.go files; all timing there must flow through " +
		"the sim clock",
	Run: run,
}

func gatedPackage(pkgPath string) bool {
	for _, g := range GatedPackages {
		if pkgPath == g || strings.HasSuffix(pkgPath, "/"+g) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	pkgGated := gatedPackage(pass.Pkg.Path())
	for _, f := range pass.Files {
		if !pkgGated && !strings.HasPrefix(filepath.Base(pass.Filename(f.Pos())), GatedFilePrefix) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := analysis.PkgFuncCall(pass.TypesInfo, call, "time", bannedNames...); ok {
				pass.Reportf(call.Pos(), "time.%s reads the wall clock in simulated-time code; route all timing through the sim clock (sim.Engine)", name)
			}
			return true
		})
	}
	return nil
}
