// Package rpc is a minimal binary RPC layer over TCP used by the live
// (multi-process) LMP mode: lmpd servers expose shared-memory operations
// (read, write, migrate, ship) and peers call them through a multiplexed
// client. Frames are length-prefixed; concurrent calls on one connection
// are matched by request id, so a single connection models a server's
// fabric adapter.
//
// Wire format (big endian):
//
//	frame  = kind(1) method(1) id(8) len(4) payload(len)
//	kind   = 1 request | 2 response | 3 error | 4 traced request
//	error payload = code(1) message(len-1)
//	traced request payload = trace(8) span(8) request-payload(len-16)
//
// The error code byte names the sentinel the handler error wrapped
// (ErrServerDead, ErrTransient), so errors.Is classification survives the
// wire instead of degrading to a raw string.
//
// A traced request carries the caller's span identity: when the caller's
// context holds a telemetry.SpanContext (see telemetry.ContextWithSpan),
// the client sends kind 4 and the server — if it has a tracer — records
// its handler span as a child of the caller's span, so one trace ID
// follows an operation across the process boundary.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/lmp-project/lmp/internal/telemetry"
)

const (
	kindRequest       = 1
	kindResponse      = 2
	kindError         = 3
	kindTracedRequest = 4
)

// traceHeaderLen is the trace(8) span(8) prefix of a traced request.
const traceHeaderLen = 16

// MaxPayload bounds a frame payload (16 MiB), protecting against corrupt
// length prefixes.
const MaxPayload = 16 << 20

// ErrClosed reports use of a closed client or server.
var ErrClosed = errors.New("rpc: closed")

// Handler serves one method: it receives the request payload and returns
// the response payload. A returned error is delivered to the caller as a
// string.
type Handler func(payload []byte) ([]byte, error)

type frameHeader struct {
	kind   byte
	method byte
	id     uint64
	length uint32
}

// framePool recycles frame assembly buffers so the per-call frame write
// is allocation-free. Buffers stay small: payloads past frameCoalesceMax
// are written header-then-payload instead of being copied.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// frameCoalesceMax bounds the payload size assembled into one buffer
// (one conn.Write, so a frame is one TCP segment in the common case).
// Larger payloads skip the copy: two writes cost less than moving the
// bytes twice.
const frameCoalesceMax = 64 << 10

func writeFrame(w io.Writer, kind, method byte, id uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("rpc: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], kind, method)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	if len(payload) > frameCoalesceMax {
		// Large payload: header-then-payload; two writes cost less than
		// copying the bytes into the frame buffer.
		if _, err := w.Write(buf); err != nil {
			*bp = buf[:0]
			framePool.Put(bp)
			return err
		}
		_, err := w.Write(payload)
		*bp = buf[:0]
		framePool.Put(bp)
		return err
	}
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

// writeTracedFrame writes a kindTracedRequest frame: the caller's span
// identity rides as a 16-byte prefix of the payload.
func writeTracedFrame(w io.Writer, method byte, id uint64, sc telemetry.SpanContext, payload []byte) error {
	if len(payload)+traceHeaderLen > MaxPayload {
		return fmt.Errorf("rpc: payload %d exceeds max %d", len(payload), MaxPayload-traceHeaderLen)
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], kindTracedRequest, method)
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(traceHeaderLen+len(payload)))
	buf = binary.BigEndian.AppendUint64(buf, sc.Trace)
	buf = binary.BigEndian.AppendUint64(buf, sc.Span)
	if len(payload) > frameCoalesceMax {
		if _, err := w.Write(buf); err != nil {
			*bp = buf[:0]
			framePool.Put(bp)
			return err
		}
		_, err := w.Write(payload)
		*bp = buf[:0]
		framePool.Put(bp)
		return err
	}
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var hdr [14]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frameHeader{}, nil, err
	}
	h := frameHeader{
		kind:   hdr[0],
		method: hdr[1],
		id:     binary.BigEndian.Uint64(hdr[2:10]),
		length: binary.BigEndian.Uint32(hdr[10:14]),
	}
	if h.length > MaxPayload {
		return frameHeader{}, nil, fmt.Errorf("rpc: frame length %d exceeds max", h.length)
	}
	payload := make([]byte, h.length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frameHeader{}, nil, err
	}
	return h, payload, nil
}

// Server dispatches incoming requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[byte]Handler
	names    [256]string
	tracer   *telemetry.Tracer
	reqCount *telemetry.Counter
	errCount *telemetry.Counter
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	calls [256]atomic.Uint64
	errs  [256]atomic.Uint64
}

// NewServer returns a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: make(map[byte]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers h for method. Registering after Serve is allowed;
// re-registering replaces.
func (s *Server) Handle(method byte, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// NameMethod labels method for spans and Stats; unnamed methods appear
// as "rpc.request".
func (s *Server) NameMethod(method byte, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.names[method] = name
}

// SetTracer makes the server record one span per request into t, named
// by NameMethod and parented on the caller's span when the request was
// traced (kind 4). A nil tracer turns spans off.
func (s *Server) SetTracer(t *telemetry.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// SetRegistry mirrors request and error totals into reg as the counters
// "rpc.requests" and "rpc.errors" (per-method detail stays in Stats).
func (s *Server) SetRegistry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqCount = reg.Counter("rpc.requests")
	s.errCount = reg.Counter("rpc.errors")
}

// MethodStats is one method's dispatch totals.
type MethodStats struct {
	Method byte   `json:"method"`
	Name   string `json:"name"`
	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors"`
}

// Stats reports per-method dispatch totals for every method that is
// named or has been called.
func (s *Server) Stats() []MethodStats {
	s.mu.Lock()
	names := s.names
	s.mu.Unlock()
	var out []MethodStats
	for m := 0; m < 256; m++ {
		calls, errors := s.calls[m].Load(), s.errs[m].Load()
		if calls == 0 && errors == 0 && names[m] == "" {
			continue
		}
		out = append(out, MethodStats{Method: byte(m), Name: names[m], Calls: calls, Errors: errors})
	}
	return out
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var wmu sync.Mutex // serializes response writes from handler goroutines
	for {
		h, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		var sc telemetry.SpanContext
		switch h.kind {
		case kindRequest:
		case kindTracedRequest:
			if len(payload) < traceHeaderLen {
				return // protocol violation
			}
			sc.Trace = binary.BigEndian.Uint64(payload[0:8])
			sc.Span = binary.BigEndian.Uint64(payload[8:16])
			payload = payload[traceHeaderLen:]
		default:
			return // protocol violation
		}
		s.mu.Lock()
		handler := s.handlers[h.method]
		name := s.names[h.method]
		tracer := s.tracer
		reqCount, errCount := s.reqCount, s.errCount
		s.mu.Unlock()
		s.calls[h.method].Add(1)
		if reqCount != nil {
			reqCount.Inc()
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var sp telemetry.Span
			if tracer != nil {
				if name == "" {
					name = "rpc.request"
				}
				sp = tracer.Begin(sc, name)
			}
			var kind byte
			var resp []byte
			var herr error
			if handler == nil {
				herr = fmt.Errorf("rpc: no handler for method %d", h.method)
				kind = kindError
				resp = encodeErrorPayload(herr)
			} else if out, err := handler(payload); err != nil {
				herr = err
				kind = kindError
				resp = encodeErrorPayload(err)
			} else {
				kind = kindResponse
				resp = out
			}
			if herr != nil {
				s.errs[h.method].Add(1)
				if errCount != nil {
					errCount.Inc()
				}
			}
			if tracer != nil {
				sp.Bytes = len(resp)
				sp.Err = herr != nil
				tracer.End(&sp)
			}
			wmu.Lock()
			defer wmu.Unlock()
			_ = writeFrame(conn, kind, h.method, h.id, resp)
		}()
	}
}

// Close stops the listener and all connections, waiting for in-flight
// handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

type pendingCall struct {
	ch chan callResult
}

type callResult struct {
	payload []byte
	err     error
}

// Client is a multiplexing RPC client over one TCP connection. It is safe
// for concurrent use.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	closed  bool
	dead    bool
	readErr error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[uint64]*pendingCall)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		h, payload, err := readFrame(c.conn)
		if err != nil {
			c.failAll(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		pc := c.pending[h.id]
		delete(c.pending, h.id)
		c.mu.Unlock()
		if pc == nil {
			continue // stale or duplicate response
		}
		switch h.kind {
		case kindResponse:
			pc.ch <- callResult{payload: payload}
		case kindError:
			pc.ch <- callResult{err: decodeRemoteError(h.method, payload)}
		default:
			pc.ch <- callResult{err: fmt.Errorf("rpc: bad frame kind %d", h.kind)}
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readErr = err
	for id, pc := range c.pending {
		pc.ch <- callResult{err: err}
		delete(c.pending, id)
	}
}

// RemoteError is an error returned by a server handler. When the handler
// error wrapped a transport sentinel (ErrServerDead, ErrTransient), the
// sentinel is preserved across the wire and exposed through Unwrap, so
// errors.Is works end to end.
type RemoteError struct {
	Method  byte
	Message string

	sentinel error
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: method %d: %s", e.Method, e.Message)
}

// Unwrap exposes the sentinel the remote error was classified as, if any.
func (e *RemoteError) Unwrap() error { return e.sentinel }

// Call sends a request and blocks for its response.
func (c *Client) Call(method byte, payload []byte) ([]byte, error) {
	return c.CallCtx(nil, method, payload)
}

// CallCtx is Call with cancellation: when ctx ends before the response
// arrives, the call returns an error wrapping ctx.Err(), the pending
// entry is dropped, and the response — if it ever arrives — is
// discarded by the read loop as stale. A nil context never cancels.
func (c *Client) CallCtx(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("rpc: call cancelled: %w", err)
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.dead {
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: peer marked dead: %w", ErrServerDead)
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	pc := &pendingCall{ch: make(chan callResult, 1)}
	c.pending[id] = pc
	c.mu.Unlock()

	// A context carrying a span identity upgrades the frame to a traced
	// request, extending the caller's trace across the wire.
	sc := telemetry.SpanFromContext(ctx)
	c.wmu.Lock()
	var err error
	if sc.Traced() {
		err = writeTracedFrame(c.conn, method, id, sc, payload)
	} else {
		err = writeFrame(c.conn, kindRequest, method, id, payload)
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case res := <-pc.ch:
		return res.payload, res.err
	case <-done:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: call cancelled: %w", ctx.Err())
	}
}

// MarkDead records a failure-detector verdict: the peer is crash-stopped.
// Every subsequent call fails fast with an error wrapping ErrServerDead
// without touching the network; in-flight calls fail the same way. The
// connection itself stays open (a misdetected peer can be UnmarkDead'd).
func (c *Client) MarkDead() {
	c.mu.Lock()
	c.dead = true
	deadErr := fmt.Errorf("rpc: peer marked dead: %w", ErrServerDead)
	for id, pc := range c.pending {
		pc.ch <- callResult{err: deadErr}
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// UnmarkDead clears a MarkDead verdict.
func (c *Client) UnmarkDead() {
	c.mu.Lock()
	c.dead = false
	c.mu.Unlock()
}

// Dead reports whether the peer is currently marked dead.
func (c *Client) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.failAll(ErrClosed)
	return err
}
