package memsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// FluidResource is a shared bandwidth capacity (bytes/second) allocated
// max-min fairly among the flows crossing it: a memory controller, a fabric
// link direction, a switch port, or a core's own streaming bound.
type FluidResource struct {
	Name string
	Rate float64
}

// Segment is one leg of a flow: Bytes that must cross every resource in
// Via simultaneously (e.g. core bound + local memory channel).
type Segment struct {
	Bytes float64
	Via   []*FluidResource
}

// Flow is a sequence of segments processed in order; a flow models one
// core scanning its contiguous chunk of a vector, whose pieces live on
// different servers.
type Flow struct {
	Name     string
	Segments []Segment

	seg  int     // current segment index
	left float64 // bytes remaining in current segment
	done float64 // completion time, seconds
	rate float64 // current fair-share rate
}

// FlowResult reports one flow's outcome.
type FlowResult struct {
	Name       string
	FinishSec  float64
	TotalBytes float64
}

// FluidResult is the outcome of a fluid simulation.
type FluidResult struct {
	// MakespanSec is the time at which the last flow finishes.
	MakespanSec float64
	Flows       []FlowResult
}

// TotalBytes sums bytes over all flows.
func (r FluidResult) TotalBytes() float64 {
	var t float64
	for _, f := range r.Flows {
		t += f.TotalBytes
	}
	return t
}

// AggregateBandwidth reports total bytes moved divided by the makespan.
func (r FluidResult) AggregateBandwidth() float64 {
	if r.MakespanSec == 0 {
		return 0
	}
	return r.TotalBytes() / r.MakespanSec
}

var errNoProgress = errors.New("memsim: fluid simulation made no progress")

// SimulateFluid runs the progressive-filling fluid model: at every instant
// each active flow receives its max-min fair share of every resource on its
// current segment; the simulation advances between segment completions.
// Flows with zero-byte segments skip them. The flows are mutated during the
// run and must not be reused.
func SimulateFluid(flows []*Flow) (FluidResult, error) {
	active := make([]*Flow, 0, len(flows))
	for _, f := range flows {
		f.seg = 0
		f.advancePastEmpty()
		if f.seg < len(f.Segments) {
			active = append(active, f)
		}
	}
	now := 0.0
	for len(active) > 0 {
		if err := assignRates(active); err != nil {
			return FluidResult{}, err
		}
		// Time until the first segment completion.
		dt := math.Inf(1)
		for _, f := range active {
			if f.rate <= 0 {
				return FluidResult{}, fmt.Errorf("%w: flow %q got zero rate", errNoProgress, f.Name)
			}
			if t := f.left / f.rate; t < dt {
				dt = t
			}
		}
		now += dt
		next := active[:0]
		for _, f := range active {
			f.left -= f.rate * dt
			if f.left <= 1e-6 {
				f.seg++
				f.advancePastEmpty()
				if f.seg >= len(f.Segments) {
					f.done = now
					continue
				}
			}
			next = append(next, f)
		}
		active = next
	}
	res := FluidResult{}
	for _, f := range flows {
		total := 0.0
		for _, s := range f.Segments {
			total += s.Bytes
		}
		res.Flows = append(res.Flows, FlowResult{Name: f.Name, FinishSec: f.done, TotalBytes: total})
		if f.done > res.MakespanSec {
			res.MakespanSec = f.done
		}
	}
	return res, nil
}

func (f *Flow) advancePastEmpty() {
	for f.seg < len(f.Segments) && f.Segments[f.seg].Bytes <= 0 {
		f.seg++
	}
	if f.seg < len(f.Segments) {
		f.left = f.Segments[f.seg].Bytes
	}
}

// assignRates computes max-min fair rates for the active flows' current
// segments using the classic bottleneck-fixing algorithm.
func assignRates(active []*Flow) error {
	type rstate struct {
		cap   float64
		flows []*Flow
	}
	res := make(map[*FluidResource]*rstate)
	for _, f := range active {
		f.rate = 0
		for _, r := range f.Segments[f.seg].Via {
			st := res[r]
			if st == nil {
				if r.Rate <= 0 {
					return fmt.Errorf("memsim: resource %q has non-positive rate", r.Name)
				}
				st = &rstate{cap: r.Rate}
				res[r] = st
			}
			st.flows = append(st.flows, f)
		}
	}
	unassigned := make(map[*Flow]bool, len(active))
	for _, f := range active {
		if len(f.Segments[f.seg].Via) == 0 {
			return fmt.Errorf("memsim: flow %q segment has no resources", f.Name)
		}
		unassigned[f] = true
	}
	// Deterministic iteration order over resources.
	order := make([]*FluidResource, 0, len(res))
	for r := range res {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Name < order[j].Name })

	for len(unassigned) > 0 {
		var bottleneck *FluidResource
		share := math.Inf(1)
		for _, r := range order {
			st := res[r]
			n := 0
			for _, f := range st.flows {
				if unassigned[f] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if s := st.cap / float64(n); s < share {
				share = s
				bottleneck = r
			}
		}
		if bottleneck == nil {
			return errNoProgress
		}
		for _, f := range res[bottleneck].flows {
			if !unassigned[f] {
				continue
			}
			f.rate = share
			delete(unassigned, f)
			for _, r := range f.Segments[f.seg].Via {
				res[r].cap -= share
				if res[r].cap < 0 {
					res[r].cap = 0
				}
			}
		}
	}
	return nil
}
