package alloc

import (
	"errors"
	"math/rand"
	"testing"

	addrpkg "github.com/lmp-project/lmp/internal/addr"
)

func mustExtents(t *testing.T, limit, unit int64) *Extents {
	t.Helper()
	e, err := NewExtents(limit, unit)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExtentsValidation(t *testing.T) {
	if _, err := NewExtents(100, 0); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := NewExtents(100, 64); err == nil {
		t.Error("unaligned limit accepted")
	}
	if _, err := NewExtents(-64, 64); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := NewExtents(0, 64); err != nil {
		t.Error("empty region rejected")
	}
}

func TestExtentsAllocFreeRoundsToUnit(t *testing.T) {
	e := mustExtents(t, 1024, 64)
	off, err := e.Alloc(100) // rounds to 128
	if err != nil {
		t.Fatal(err)
	}
	if e.InUse() != 128 {
		t.Fatalf("in use = %d", e.InUse())
	}
	if err := e.Free(off); err != nil {
		t.Fatal(err)
	}
	if e.InUse() != 0 || e.FreeBytes() != 1024 {
		t.Fatalf("after free: inUse=%d free=%d", e.InUse(), e.FreeBytes())
	}
	if err := e.Free(off); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("double free: %v", err)
	}
}

func TestExtentsNonPowerOfTwoRegion(t *testing.T) {
	// 24 "GB" scaled: 3 * 2^something — non-power-of-two limits work.
	e := mustExtents(t, 3*64, 64)
	var offs []int64
	for i := 0; i < 3; i++ {
		off, err := e.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if _, err := e.Alloc(64); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-alloc: %v", err)
	}
	for _, o := range offs {
		if err := e.Free(o); err != nil {
			t.Fatal(err)
		}
	}
	if e.FragmentCount() != 1 {
		t.Fatalf("fragments after coalesce = %d, want 1", e.FragmentCount())
	}
}

func TestExtentsCoalescing(t *testing.T) {
	e := mustExtents(t, 4*64, 64)
	a, _ := e.Alloc(64)
	b, _ := e.Alloc(64)
	c, _ := e.Alloc(64)
	// Free middle, then neighbours: must coalesce into one extent plus the
	// untouched tail.
	if err := e.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := e.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := e.Free(c); err != nil {
		t.Fatal(err)
	}
	if e.FragmentCount() != 1 {
		t.Fatalf("fragments = %d, want 1", e.FragmentCount())
	}
	if _, err := e.Alloc(4 * 64); err != nil {
		t.Fatalf("full alloc after coalesce: %v", err)
	}
}

func TestExtentsGrow(t *testing.T) {
	e := mustExtents(t, 128, 64)
	if _, err := e.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Alloc(64); !errors.Is(err, ErrNoSpace) {
		t.Fatal("full region allocated")
	}
	if err := e.SetLimit(256); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Alloc(128); err != nil {
		t.Fatalf("alloc after grow: %v", err)
	}
}

func TestExtentsShrink(t *testing.T) {
	e := mustExtents(t, 256, 64)
	off, _ := e.Alloc(64)
	// Tail [64,256) is free: shrink to 128 works.
	if err := e.SetLimit(128); err != nil {
		t.Fatal(err)
	}
	if e.FreeBytes() != 64 {
		t.Fatalf("free after shrink = %d", e.FreeBytes())
	}
	// Shrinking below the allocation fails.
	if err := e.SetLimit(0); err == nil {
		t.Fatal("shrink through allocation accepted")
	}
	if err := e.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := e.SetLimit(0); err != nil {
		t.Fatalf("shrink to zero after free: %v", err)
	}
	if err := e.SetLimit(100); err == nil {
		t.Fatal("unaligned limit accepted")
	}
}

func TestExtentsShrinkWithFragmentedTail(t *testing.T) {
	e := mustExtents(t, 4*64, 64)
	a, _ := e.Alloc(64) // [0,64)
	b, _ := e.Alloc(64) // [64,128)
	_ = a
	if err := e.Free(b); err != nil {
		t.Fatal(err)
	}
	// Free extents: [64,128) and [128,256). They coalesce to [64,256), so
	// shrinking to 64 is possible.
	if err := e.SetLimit(64); err != nil {
		t.Fatalf("shrink to fragmented-but-coalesced tail: %v", err)
	}
	if e.Size() != 64 {
		t.Fatalf("size = %d", e.Size())
	}
}

func TestExtentsRandomizedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := mustExtents(t, 1<<16, 64)
	type blk struct{ off, size int64 }
	var live []blk
	for step := 0; step < 3000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := int64(64 * (1 + rng.Intn(8)))
			off, err := e.Alloc(n)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range live {
				if off < l.off+l.size && l.off < off+n {
					t.Fatalf("overlap at step %d", step)
				}
			}
			live = append(live, blk{off, n})
		} else {
			i := rng.Intn(len(live))
			if err := e.Free(live[i].off); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		var used int64
		for _, l := range live {
			used += l.size
		}
		if e.InUse() != used {
			t.Fatalf("inUse=%d, want %d", e.InUse(), used)
		}
	}
}

func TestPlacerWithExtentsAndMaxChunk(t *testing.T) {
	// The core runtime's configuration: extent regions, MaxChunk = stripe.
	var rs []*Region
	for i := 0; i < 3; i++ {
		rs = append(rs, &Region{Server: addrpkg.ServerID(i), Mem: mustExtents(t, 8*64, 64)})
	}
	pl := mustPlacer(t, LocalityAware, 64, rs)
	pl.MaxChunk = 64
	chunks, err := pl.Place(5*64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 5 {
		t.Fatalf("chunks = %d, want 5 slice-sized pieces", len(chunks))
	}
	for _, c := range chunks {
		if c.Size != 64 {
			t.Fatalf("chunk size = %d, want 64", c.Size)
		}
		if c.Server != 1 {
			t.Fatalf("chunk on %d, want preferred server 1", c.Server)
		}
	}
}
