package daemon

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/lmp-project/lmp/internal/rpc"
)

func startDaemon(t *testing.T, name string, capacity, shared int64) (*Server, *Client) {
	t.Helper()
	s, err := NewServer(name, capacity, shared)
	if err != nil {
		t.Fatal(err)
	}
	addrStr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addrStr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c
}

func TestInfo(t *testing.T) {
	_, c := startDaemon(t, "srv0", 1<<20, 1<<20)
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "srv0" || info.Capacity != 1<<20 || info.Shared != 1<<20 || info.InUse != 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestAllocReadWriteOverTCP(t *testing.T) {
	_, c := startDaemon(t, "srv0", 1<<20, 1<<20)
	off, err := c.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cxl.mem over tcp")
	if err := c.Write(off+1000, msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(off+1000, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	if err := c.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(off); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestAccessOutsideSharedRejected(t *testing.T) {
	_, c := startDaemon(t, "srv0", 1<<20, 1<<16)
	// The bounds check fires server-side, so the client sees it as a
	// typed *rpc.RemoteError carrying the handler's message.
	_, err := c.Read(1<<16, 64)
	var re *rpc.RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Message, "outside shared region") {
		t.Fatalf("out-of-region read: %v", err)
	}
	if err := c.Write(-1, []byte("x")); err == nil {
		t.Fatal("negative write accepted")
	}
}

func TestShippedSumKernel(t *testing.T) {
	_, c := startDaemon(t, "srv0", 1<<20, 1<<20)
	off, err := c.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	// 512 words of value 3.
	buf := make([]byte, 4096)
	for i := 0; i+8 <= len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], 3)
	}
	if err := c.Write(off, buf); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Sum(off, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 3*512 {
		t.Fatalf("sum = %v, want 1536", sum)
	}
}

func TestHotPagesOverTCP(t *testing.T) {
	_, c := startDaemon(t, "srv0", 1<<20, 1<<20)
	off, err := c.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer one page; touch another once.
	for i := 0; i < 10; i++ {
		if _, err := c.Read(off, 64); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read(off+32<<10, 64); err != nil {
		t.Fatal(err)
	}
	hot, err := c.HotPages(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 2 {
		t.Fatalf("hot pages = %d, want 2", len(hot))
	}
	if hot[0].Heat <= hot[1].Heat {
		t.Fatalf("ordering wrong: %+v", hot)
	}
	if hot[0].Page != off/4096 {
		t.Fatalf("hottest page = %d, want %d", hot[0].Page, off/4096)
	}
	if _, err := c.HotPages(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestResizeOverTCP(t *testing.T) {
	_, c := startDaemon(t, "srv0", 1<<20, 1<<16)
	if err := c.Resize(1 << 18); err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shared != 1<<18 {
		t.Fatalf("shared after resize = %d", info.Shared)
	}
	if err := c.Resize(1 << 21); err == nil {
		t.Fatal("resize beyond capacity accepted")
	}
}

func TestExhaustionOverTCP(t *testing.T) {
	_, c := startDaemon(t, "srv0", 1<<16, 1<<16)
	if _, err := c.Alloc(1 << 17); err == nil {
		t.Fatal("over-alloc accepted")
	}
}

func startCluster(t *testing.T, n int, capacity int64) *PoolView {
	t.Helper()
	var clients []*Client
	for i := 0; i < n; i++ {
		_, c := startDaemon(t, "srv", capacity, capacity)
		clients = append(clients, c)
	}
	v, err := NewPoolView(8<<10, clients...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPoolViewValidation(t *testing.T) {
	if _, err := NewPoolView(64); err == nil {
		t.Fatal("empty view accepted")
	}
	_, c := startDaemon(t, "x", 1<<16, 1<<16)
	if _, err := NewPoolView(0, c); err == nil {
		t.Fatal("zero stripe accepted")
	}
}

func TestPoolViewStripedRoundTrip(t *testing.T) {
	v := startCluster(t, 4, 1<<20)
	b, err := v.Alloc(100 << 10) // 100KiB across 4 daemons in 8KiB stripes
	if err != nil {
		t.Fatal(err)
	}
	daemons := map[int]bool{}
	for _, c := range b.Chunks() {
		daemons[c.Daemon] = true
	}
	if len(daemons) != 4 {
		t.Fatalf("striping used %d daemons", len(daemons))
	}
	data := make([]byte, 40<<10)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Offset chosen to span multiple stripes.
	if err := b.WriteAt(data, 5000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := b.ReadAt(got, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped round trip failed")
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolViewBounds(t *testing.T) {
	v := startCluster(t, 2, 1<<20)
	b, err := v.Alloc(16 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ReadAt(make([]byte, 10), b.Size()-5); err == nil {
		t.Fatal("overrun read accepted")
	}
	if err := b.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative write accepted")
	}
	if _, err := v.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
}

func TestPoolViewExhaustionRollsBack(t *testing.T) {
	v := startCluster(t, 2, 1<<16) // 2 x 64KiB
	if _, err := v.Alloc(1 << 20); err == nil {
		t.Fatal("impossible alloc accepted")
	}
	// All space must be free again.
	b, err := v.Alloc(2 * (1 << 16) / 2)
	if err != nil {
		t.Fatalf("post-rollback alloc: %v", err)
	}
	_ = b
}

func TestLiveMigration(t *testing.T) {
	v := startCluster(t, 3, 1<<20)
	b, err := v.Alloc(24 << 10)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, b.Size())
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := b.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Move every chunk to daemon 2; data must survive and stay addressable
	// at the same buffer offsets.
	for i := range b.Chunks() {
		if err := b.Migrate(i, 2); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range b.Chunks() {
		if c.Daemon != 2 {
			t.Fatalf("chunk still on daemon %d", c.Daemon)
		}
	}
	got := make([]byte, b.Size())
	if err := b.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted by migration")
	}
	// Other daemons' regions are free again.
	for d := 0; d < 2; d++ {
		info, err := v.clients[d].Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.InUse != 0 {
			t.Fatalf("daemon %d still holds %d bytes", d, info.InUse)
		}
	}
	// Migrating to the same daemon is a no-op; bad indexes fail.
	if err := b.Migrate(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Migrate(-1, 0); err == nil {
		t.Fatal("bad chunk accepted")
	}
	if err := b.Migrate(0, 99); err == nil {
		t.Fatal("bad daemon accepted")
	}
}

func TestShippedSumMatchesPulledSum(t *testing.T) {
	v := startCluster(t, 3, 1<<20)
	b, err := v.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, b.Size())
	var want float64
	for i := 0; i+8 <= len(data); i += 8 {
		binary.LittleEndian.PutUint64(data[i:], uint64(i%1000))
		want += float64(i % 1000)
	}
	if err := b.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	shipped, err := b.ShippedSum()
	if err != nil {
		t.Fatal(err)
	}
	pulled, err := b.PulledSum()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shipped-want) > 1e-6 || math.Abs(pulled-want) > 1e-6 {
		t.Fatalf("shipped=%v pulled=%v want=%v", shipped, pulled, want)
	}
}
