// Package daemon implements the live distributed mode: each server runs
// an lmpd daemon exporting its shared region over TCP (the functional
// stand-in for CXL.mem transactions), and clients compose the daemons
// into a pool with a client-side coarse map — the same two-step
// addressing as the in-process runtime. Computation shipping sends a
// named kernel to the daemon owning the data and returns only the partial
// result.
package daemon

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/memnode"
	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// RPC method numbers.
const (
	MethodInfo byte = iota + 1
	MethodAlloc
	MethodFree
	MethodRead
	MethodWrite
	MethodSum
	MethodResize
	MethodHotPages
	MethodStats
)

// Info describes a daemon's shared region.
type Info struct {
	Name     string
	Capacity int64
	Shared   int64
	InUse    int64
}

// Server is one lmpd instance: a shared region served over TCP.
type Server struct {
	name   string
	node   *memnode.Node
	region *alloc.Extents
	rpc    *rpc.Server

	metrics *telemetry.Registry
	tracer  *telemetry.Tracer
	slowLog atomic.Pointer[func(telemetry.Span)]

	mu   sync.Mutex
	addr string
}

// NewServer builds a daemon for a server with the given DRAM capacity and
// initial shared-region size (rounded down to pages).
func NewServer(name string, capacity, shared int64) (*Server, error) {
	shared = shared - shared%memnode.PageSize
	node, err := memnode.New(name, capacity, shared)
	if err != nil {
		return nil, err
	}
	region, err := alloc.NewExtents(shared, memnode.PageSize)
	if err != nil {
		return nil, err
	}
	s := &Server{
		name:    name,
		node:    node,
		region:  region,
		rpc:     rpc.NewServer(),
		metrics: telemetry.NewRegistry(),
	}
	s.tracer = telemetry.NewTracer(telemetry.TracerConfig{Observer: slowRelay{s}})
	s.rpc.SetTracer(s.tracer)
	s.rpc.SetRegistry(s.metrics)
	s.register()
	return s, nil
}

// slowRelay forwards slow-op spans to the daemon's current log hook.
type slowRelay struct{ s *Server }

func (r slowRelay) OnSpan(telemetry.Span) {}

func (r slowRelay) OnSlowOp(sp telemetry.Span) {
	if f := r.s.slowLog.Load(); f != nil {
		(*f)(sp)
	}
}

// OnSlowOp installs fn to receive every handler span that crosses the
// slow-op threshold — lmpd logs them. A nil fn uninstalls.
func (s *Server) OnSlowOp(fn func(telemetry.Span)) {
	if fn == nil {
		s.slowLog.Store(nil)
		return
	}
	s.slowLog.Store(&fn)
}

// SetSlowOpNS adjusts the slow-op threshold (default 10ms; negative
// disables).
func (s *Server) SetSlowOpNS(ns int64) { s.tracer.SetSlowOpNS(ns) }

// Metrics exposes the daemon's telemetry registry (rpc.requests,
// rpc.errors) for the Prometheus endpoint.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// TraceSpans returns the daemon's retained handler spans, oldest first.
func (s *Server) TraceSpans() []telemetry.Span { return s.tracer.Spans() }

// ServerStats is the daemon's typed observability snapshot, served as
// JSON by lmpd's /stats endpoint.
type ServerStats struct {
	Name           string            `json:"name"`
	Capacity       int64             `json:"capacity"`
	Shared         int64             `json:"shared"`
	InUse          int64             `json:"in_use"`
	Methods        []rpc.MethodStats `json:"methods"`
	SlowOps        uint64            `json:"slow_ops"`
	SpansPublished uint64            `json:"spans_published"`
}

// Stats captures the daemon's typed snapshot.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Name:           s.name,
		Capacity:       s.node.Capacity(),
		Shared:         s.region.Size(),
		InUse:          s.region.InUse(),
		Methods:        s.rpc.Stats(),
		SlowOps:        s.tracer.SlowOps(),
		SpansPublished: s.tracer.Published(),
	}
}

// Listen starts serving on addr (":0" picks a port) and returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	bound, err := s.rpc.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addr = bound
	s.mu.Unlock()
	return bound, nil
}

// Close stops the daemon.
func (s *Server) Close() error { return s.rpc.Close() }

func (s *Server) register() {
	s.rpc.Handle(MethodInfo, s.handleInfo)
	s.rpc.Handle(MethodAlloc, s.handleAlloc)
	s.rpc.Handle(MethodFree, s.handleFree)
	s.rpc.Handle(MethodRead, s.handleRead)
	s.rpc.Handle(MethodWrite, s.handleWrite)
	s.rpc.Handle(MethodSum, s.handleSum)
	s.rpc.Handle(MethodResize, s.handleResize)
	s.rpc.Handle(MethodHotPages, s.handleHotPages)
	s.rpc.NameMethod(MethodInfo, "rpc.info")
	s.rpc.NameMethod(MethodAlloc, "rpc.alloc")
	s.rpc.NameMethod(MethodFree, "rpc.free")
	s.rpc.NameMethod(MethodRead, "rpc.read")
	s.rpc.NameMethod(MethodWrite, "rpc.write")
	s.rpc.NameMethod(MethodSum, "rpc.sum")
	s.rpc.NameMethod(MethodResize, "rpc.resize")
	s.rpc.NameMethod(MethodHotPages, "rpc.hot_pages")
	s.rpc.Handle(MethodStats, s.handleStats)
	s.rpc.NameMethod(MethodStats, "rpc.stats")
}

// handleStats returns the daemon's typed snapshot as JSON — the wire
// format doubles as the /stats endpoint payload, so lmpctl and HTTP
// scrapers see the same document.
func (s *Server) handleStats(_ []byte) ([]byte, error) {
	return json.Marshal(s.Stats())
}

// handleHotPages returns up to k (page, heat) pairs by descending heat —
// the profile a remote balancer would consume.
func (s *Server) handleHotPages(p []byte) ([]byte, error) {
	if len(p) != 4 {
		return nil, fmt.Errorf("daemon: hot-pages payload %d bytes", len(p))
	}
	k := int(binary.BigEndian.Uint32(p))
	if k <= 0 || k > 4096 {
		return nil, fmt.Errorf("daemon: hot-pages count %d out of range", k)
	}
	hot := s.node.HottestPages(k)
	out := make([]byte, 4+16*len(hot))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(hot)))
	for i, st := range hot {
		binary.BigEndian.PutUint64(out[4+16*i:], uint64(st.Page))
		binary.BigEndian.PutUint64(out[12+16*i:], st.Heat)
	}
	return out, nil
}

func (s *Server) handleInfo(_ []byte) ([]byte, error) {
	out := make([]byte, 24+len(s.name))
	binary.BigEndian.PutUint64(out[0:8], uint64(s.node.Capacity()))
	binary.BigEndian.PutUint64(out[8:16], uint64(s.region.Size()))
	binary.BigEndian.PutUint64(out[16:24], uint64(s.region.InUse()))
	copy(out[24:], s.name)
	return out, nil
}

func (s *Server) handleAlloc(p []byte) ([]byte, error) {
	if len(p) != 8 {
		return nil, fmt.Errorf("daemon: alloc payload %d bytes", len(p))
	}
	n := int64(binary.BigEndian.Uint64(p))
	off, err := s.region.Alloc(n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(off))
	return out, nil
}

func (s *Server) handleFree(p []byte) ([]byte, error) {
	if len(p) != 8 {
		return nil, fmt.Errorf("daemon: free payload %d bytes", len(p))
	}
	return nil, s.region.Free(int64(binary.BigEndian.Uint64(p)))
}

func (s *Server) checkShared(off, n int64) error {
	if off < 0 || n < 0 || off+n > s.region.Size() {
		return fmt.Errorf("daemon: access [%d,%d) outside shared region of %d", off, off+n, s.region.Size())
	}
	return nil
}

func (s *Server) handleRead(p []byte) ([]byte, error) {
	if len(p) != 12 {
		return nil, fmt.Errorf("daemon: read payload %d bytes", len(p))
	}
	off := int64(binary.BigEndian.Uint64(p[0:8]))
	n := int64(binary.BigEndian.Uint32(p[8:12]))
	if err := s.checkShared(off, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if err := s.node.ReadAt(out, off); err != nil {
		return nil, err
	}
	s.node.RecordAccess(off, true, false)
	return out, nil
}

func (s *Server) handleWrite(p []byte) ([]byte, error) {
	if len(p) < 8 {
		return nil, fmt.Errorf("daemon: write payload %d bytes", len(p))
	}
	off := int64(binary.BigEndian.Uint64(p[0:8]))
	data := p[8:]
	if err := s.checkShared(off, int64(len(data))); err != nil {
		return nil, err
	}
	if err := s.node.WriteAt(data, off); err != nil {
		return nil, err
	}
	s.node.RecordAccess(off, true, true)
	return nil, nil
}

// handleSum is the near-memory kernel: sum the little-endian uint64 words
// of [off, off+n) locally and return only the 8-byte result.
func (s *Server) handleSum(p []byte) ([]byte, error) {
	if len(p) != 12 {
		return nil, fmt.Errorf("daemon: sum payload %d bytes", len(p))
	}
	off := int64(binary.BigEndian.Uint64(p[0:8]))
	n := int64(binary.BigEndian.Uint32(p[8:12]))
	if err := s.checkShared(off, n); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if err := s.node.ReadAt(buf, off); err != nil {
		return nil, err
	}
	var sum float64
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		sum += float64(binary.LittleEndian.Uint64(buf[i:]))
	}
	for ; i < len(buf); i++ {
		sum += float64(buf[i])
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, math.Float64bits(sum))
	return out, nil
}

func (s *Server) handleResize(p []byte) ([]byte, error) {
	if len(p) != 8 {
		return nil, fmt.Errorf("daemon: resize payload %d bytes", len(p))
	}
	limit := int64(binary.BigEndian.Uint64(p))
	limit = limit - limit%memnode.PageSize
	if limit > s.node.Capacity() {
		return nil, fmt.Errorf("daemon: shared %d exceeds capacity %d", limit, s.node.Capacity())
	}
	if err := s.region.SetLimit(limit); err != nil {
		return nil, err
	}
	return nil, s.node.Resize(limit)
}

// Client is a typed client for one daemon. It speaks through an
// rpc.Caller, so transports compose: a fault injector or a retrier can be
// stacked between the typed layer and the TCP connection.
type Client struct {
	c rpc.Caller
}

// Dial connects to a daemon over TCP.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// WrapCaller builds a client over an arbitrary transport — typically a
// Dial'd connection wrapped in chaos injection and/or an rpc.Retrier.
func WrapCaller(t rpc.Caller) *Client { return &Client{c: t} }

// Close tears down the underlying connection when the transport owns one
// (wrapped transports that are not closers are left to their owner).
func (c *Client) Close() error {
	if closer, ok := c.c.(interface{ Close() error }); ok {
		return closer.Close()
	}
	return nil
}

// Info fetches the daemon's region description.
func (c *Client) Info() (Info, error) {
	resp, err := c.c.Call(MethodInfo, nil)
	if err != nil {
		return Info{}, err
	}
	if len(resp) < 24 {
		return Info{}, fmt.Errorf("daemon: short info response")
	}
	return Info{
		Capacity: int64(binary.BigEndian.Uint64(resp[0:8])),
		Shared:   int64(binary.BigEndian.Uint64(resp[8:16])),
		InUse:    int64(binary.BigEndian.Uint64(resp[16:24])),
		Name:     string(resp[24:]),
	}, nil
}

// Alloc reserves n bytes in the daemon's shared region.
func (c *Client) Alloc(n int64) (int64, error) {
	req := make([]byte, 8)
	binary.BigEndian.PutUint64(req, uint64(n))
	resp, err := c.c.Call(MethodAlloc, req)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(resp)), nil
}

// Free releases an allocation.
func (c *Client) Free(off int64) error {
	req := make([]byte, 8)
	binary.BigEndian.PutUint64(req, uint64(off))
	_, err := c.c.Call(MethodFree, req)
	return err
}

// Read fetches n bytes at off.
func (c *Client) Read(off int64, n int) ([]byte, error) {
	return c.ReadCtx(nil, off, n)
}

// ReadCtx is Read with cancellation: a context that ends before the
// daemon responds fails the call with an error wrapping ctx.Err(),
// leaving the connection usable (the stale response is discarded).
func (c *Client) ReadCtx(ctx context.Context, off int64, n int) ([]byte, error) {
	req := make([]byte, 12)
	binary.BigEndian.PutUint64(req[0:8], uint64(off))
	binary.BigEndian.PutUint32(req[8:12], uint32(n))
	return c.c.CallCtx(ctx, MethodRead, req)
}

// ReadAsync issues a read without blocking for the response: the future
// resolves to the raw bytes. Any number of async calls may be in flight
// on one connection; the transport pipelines (and, for small requests,
// batches) them.
func (c *Client) ReadAsync(ctx context.Context, off int64, n int) *rpc.Future {
	req := make([]byte, 12)
	binary.BigEndian.PutUint64(req[0:8], uint64(off))
	binary.BigEndian.PutUint32(req[8:12], uint32(n))
	return rpc.Async(c.c, ctx, MethodRead, req)
}

// Write stores data at off.
func (c *Client) Write(off int64, data []byte) error {
	return c.WriteCtx(nil, off, data)
}

// WriteAsync issues a write without blocking for the acknowledgement.
func (c *Client) WriteAsync(ctx context.Context, off int64, data []byte) *rpc.Future {
	req := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(req[0:8], uint64(off))
	copy(req[8:], data)
	return rpc.Async(c.c, ctx, MethodWrite, req)
}

// WriteCtx is Write with cancellation, with ReadCtx's semantics. A
// cancelled write may or may not have been applied by the daemon — the
// cancellation is client-side.
func (c *Client) WriteCtx(ctx context.Context, off int64, data []byte) error {
	req := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(req[0:8], uint64(off))
	copy(req[8:], data)
	_, err := c.c.CallCtx(ctx, MethodWrite, req)
	return err
}

// Sum ships the aggregation kernel: the daemon sums [off, off+n) locally.
func (c *Client) Sum(off int64, n int) (float64, error) {
	req := make([]byte, 12)
	binary.BigEndian.PutUint64(req[0:8], uint64(off))
	binary.BigEndian.PutUint32(req[8:12], uint32(n))
	resp, err := c.c.Call(MethodSum, req)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(resp)), nil
}

// SumAsync ships the aggregation kernel without blocking; the future
// resolves to the daemon's encoded partial sum.
func (c *Client) SumAsync(ctx context.Context, off int64, n int) *rpc.Future {
	req := make([]byte, 12)
	binary.BigEndian.PutUint64(req[0:8], uint64(off))
	binary.BigEndian.PutUint32(req[8:12], uint32(n))
	return rpc.Async(c.c, ctx, MethodSum, req)
}

// HotPage is one entry of a daemon's access profile.
type HotPage struct {
	Page int64
	Heat uint64
}

// HotPages fetches up to k of the daemon's hottest pages.
func (c *Client) HotPages(k int) ([]HotPage, error) {
	req := make([]byte, 4)
	binary.BigEndian.PutUint32(req, uint32(k))
	resp, err := c.c.Call(MethodHotPages, req)
	if err != nil {
		return nil, err
	}
	if len(resp) < 4 {
		return nil, fmt.Errorf("daemon: short hot-pages response")
	}
	n := int(binary.BigEndian.Uint32(resp[0:4]))
	if len(resp) != 4+16*n {
		return nil, fmt.Errorf("daemon: hot-pages response size %d for %d entries", len(resp), n)
	}
	out := make([]HotPage, n)
	for i := 0; i < n; i++ {
		out[i] = HotPage{
			Page: int64(binary.BigEndian.Uint64(resp[4+16*i:])),
			Heat: binary.BigEndian.Uint64(resp[12+16*i:]),
		}
	}
	return out, nil
}

// Stats fetches the daemon's typed observability snapshot.
func (c *Client) Stats() (ServerStats, error) {
	resp, err := c.c.Call(MethodStats, nil)
	if err != nil {
		return ServerStats{}, err
	}
	var st ServerStats
	if err := json.Unmarshal(resp, &st); err != nil {
		return ServerStats{}, fmt.Errorf("daemon: bad stats payload: %w", err)
	}
	return st, nil
}

// Resize moves the daemon's private/shared boundary.
func (c *Client) Resize(shared int64) error {
	req := make([]byte, 8)
	binary.BigEndian.PutUint64(req, uint64(shared))
	_, err := c.c.Call(MethodResize, req)
	return err
}
