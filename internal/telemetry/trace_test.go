package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// simClock is a deterministic manual clock for tracer tests.
type simClock struct {
	mu  sync.Mutex
	now int64
}

func (c *simClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d int64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestTracerSpanTree(t *testing.T) {
	clk := &simClock{}
	tr := NewTracer(TracerConfig{Clock: clk.Now, SlowOpNS: -1})

	root := tr.Begin(SpanContext{}, "pool.read")
	if root.Trace == 0 || root.Trace != root.ID || root.Parent != 0 {
		t.Fatalf("root span ids: %+v", root)
	}
	clk.Advance(10)
	child := tr.Begin(root.Context(), "cache.fill")
	if child.Trace != root.Trace || child.Parent != root.ID {
		t.Fatalf("child not linked to root: %+v", child)
	}
	clk.Advance(5)
	child.Bytes = 4096
	tr.End(&child)
	clk.Advance(5)
	root.Server = 2
	tr.End(&root)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	// Publication order: child ended first.
	if spans[0].Op != "cache.fill" || spans[1].Op != "pool.read" {
		t.Fatalf("order: %q, %q", spans[0].Op, spans[1].Op)
	}
	if spans[0].DurationNS != 5 || spans[1].DurationNS != 20 {
		t.Fatalf("durations: %d, %d", spans[0].DurationNS, spans[1].DurationNS)
	}
	if spans[0].Bytes != 4096 || spans[1].Server != 2 {
		t.Fatalf("payload fields lost: %+v, %+v", spans[0], spans[1])
	}
	if tr.Published() != 2 {
		t.Fatalf("published = %d", tr.Published())
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64, SlowOpNS: -1})
	const n = 10000
	for i := 0; i < n; i++ {
		s := tr.Begin(SpanContext{}, "op")
		tr.End(&s)
	}
	spans := tr.Spans()
	// Capacity is RingSize rounded up across lanes; it must be bounded
	// well below n and retain only the newest spans.
	if len(spans) == 0 || len(spans) >= n/2 {
		t.Fatalf("ring retained %d of %d spans", len(spans), n)
	}
	if tr.Published() != n {
		t.Fatalf("published = %d, want %d", tr.Published(), n)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("spans not in publication order at %d: %d then %d", i, spans[i-1].ID, spans[i].ID)
		}
	}
}

type recordingObserver struct {
	mu    sync.Mutex
	spans []Span
	slow  []Span
}

func (o *recordingObserver) OnSpan(s Span) {
	o.mu.Lock()
	o.spans = append(o.spans, s)
	o.mu.Unlock()
}

func (o *recordingObserver) OnSlowOp(s Span) {
	o.mu.Lock()
	o.slow = append(o.slow, s)
	o.mu.Unlock()
}

func TestTracerSlowOpsAndObserver(t *testing.T) {
	clk := &simClock{}
	obs := &recordingObserver{}
	tr := NewTracer(TracerConfig{Clock: clk.Now, SlowOpNS: 100, Observer: obs})

	fast := tr.Begin(SpanContext{}, "fast")
	clk.Advance(99)
	if slow := tr.End(&fast); slow {
		t.Fatal("99ns span classified slow with 100ns threshold")
	}
	slowSpan := tr.Begin(SpanContext{}, "slow")
	clk.Advance(100)
	if slow := tr.End(&slowSpan); !slow {
		t.Fatal("100ns span not classified slow at threshold")
	}
	if tr.SlowOps() != 1 {
		t.Fatalf("slow ops = %d, want 1", tr.SlowOps())
	}
	if len(obs.spans) != 2 || len(obs.slow) != 1 {
		t.Fatalf("observer saw %d spans, %d slow", len(obs.spans), len(obs.slow))
	}
	if obs.slow[0].Op != "slow" {
		t.Fatalf("slow span op = %q", obs.slow[0].Op)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 1 << 14, SlowOpNS: -1})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				root := tr.Begin(SpanContext{}, "root")
				child := tr.Begin(root.Context(), "child")
				tr.End(&child)
				tr.End(&root)
			}
		}()
	}
	wg.Wait()
	if got := tr.Published(); got != workers*per*2 {
		t.Fatalf("published = %d, want %d", got, workers*per*2)
	}
	byID := map[uint64]Span{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	// Every retained child whose parent is also retained must agree on
	// the trace ID.
	for _, s := range byID {
		if s.Parent == 0 {
			continue
		}
		if p, ok := byID[s.Parent]; ok && p.Trace != s.Trace {
			t.Fatalf("child %d trace %d, parent trace %d", s.ID, s.Trace, p.Trace)
		}
	}
}

func TestSpanContextCarriage(t *testing.T) {
	if sc := SpanFromContext(nil); sc.Traced() {
		t.Fatal("nil context yielded a traced SpanContext")
	}
	if sc := SpanFromContext(context.Background()); sc.Traced() {
		t.Fatal("bare context yielded a traced SpanContext")
	}
	want := SpanContext{Trace: 7, Span: 9}
	ctx := ContextWithSpan(context.Background(), want)
	if got := SpanFromContext(ctx); got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestTraceAllocFree(t *testing.T) {
	tr := NewTracer(TracerConfig{SlowOpNS: -1})
	allocs := testing.AllocsPerRun(200, func() {
		s := tr.Begin(SpanContext{}, "pool.read")
		s.Bytes = 64
		tr.End(&s)
	})
	if allocs != 0 {
		t.Fatalf("Begin/End allocates %.1f per op, want 0", allocs)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"pool.reads.local":     "lmp_pool_reads_local",
		"pool.cache.hits":      "lmp_pool_cache_hits",
		"rpc.server.slow_ops":  "lmp_rpc_server_slow_ops",
		"weird-name.with/junk": "lmp_weird_name_with_junk",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pool.reads.local").Add(3)
	r.Gauge("pool.bytes_allocated").Set(42)
	r.Striped("pool.stripe.ops", 4).Add(1, 5)
	h := r.Histogram("pool.latency.read")
	h.Observe(100)
	h.Observe(200)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lmp_pool_reads_local counter",
		"lmp_pool_reads_local 3",
		"# TYPE lmp_pool_bytes_allocated gauge",
		"lmp_pool_bytes_allocated 42",
		"# TYPE lmp_pool_stripe_ops counter",
		"lmp_pool_stripe_ops 5",
		"# TYPE lmp_pool_latency_read summary",
		`lmp_pool_latency_read{quantile="0.99"} 200`,
		"lmp_pool_latency_read_sum 300",
		"lmp_pool_latency_read_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
