package core

import (
	"errors"
	"fmt"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/failure"
)

// CheckInvariants verifies the pool's cross-layer bookkeeping and returns
// every violation found, joined. It is the oracle the chaos harness runs
// between fault injections:
//
//   - every slice of every live buffer has a published backing whose
//     buffer pointer, global-map owner, and server-local page-table entry
//     all agree;
//   - every published slice-table entry belongs to a live buffer (no
//     orphans surviving Release);
//   - freed logical runs have no published backings;
//   - protected buffers remain reconstructible: a replicated slice keeps
//     at least one live copy, and an erasure-coded stripe has at most M
//     unavailable shards.
//
// The reconstructibility checks assume placement never had to fall back
// onto an already-used server (ample capacity), which harness
// configurations must guarantee. CheckInvariants takes the structural
// lock, so it linearizes with allocation, release, crash, and repair.
func (p *Pool) CheckInvariants() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var violations []error
	report := func(format string, args ...any) {
		violations = append(violations, fmt.Errorf(format, args...))
	}

	for la, b := range p.buffers {
		if b.rng.Start != la {
			report("buffer keyed at %v has range start %v", la, b.rng.Start)
			continue
		}
		if b.released.Load() {
			report("released buffer %v still indexed", la)
			continue
		}
		first := b.firstSlice()
		for i := uint64(0); i < b.sliceCount(); i++ {
			s := first + i
			back := p.lookupSlice(s)
			if back == nil {
				report("buffer %v slice %d has no published backing", la, s)
				continue
			}
			if back.buf != b {
				report("buffer %v slice %d backing points at a different buffer", la, s)
			}
			if owner, err := p.global.Owner(addr.SliceBase(s)); err != nil {
				report("buffer %v slice %d not in global map: %v", la, s, err)
			} else if owner != back.server {
				report("buffer %v slice %d: global map owner %d, backing server %d", la, s, owner, back.server)
			}
			if off, ok := p.locals[back.server].LookupSlice(s); !ok {
				report("buffer %v slice %d missing from server %d local map", la, s, back.server)
			} else if off != back.offset {
				report("buffer %v slice %d: local map offset %d, backing offset %d", la, s, off, back.offset)
			}
		}
		p.checkProtectionLocked(b, report)
	}

	t := p.table.Load()
	for s := range t.entries {
		back := t.entries[s].Load()
		if back == nil {
			continue
		}
		if back.buf == nil || p.buffers[back.buf.rng.Start] != back.buf {
			report("orphan slice %d published with no live buffer", s)
		}
	}

	for _, r := range p.freeRuns {
		first := addr.SliceOf(r.Start)
		for i := uint64(0); i < uint64(r.Size/SliceSize); i++ {
			if p.lookupSlice(first+i) != nil {
				report("freed run at %v has a published backing for slice %d", r.Start, first+i)
			}
		}
	}

	if p.caches != nil {
		p.checkCacheLocked(report)
	}

	return errors.Join(violations...)
}

// checkProtectionLocked verifies buffer b is still reconstructible under
// its protection policy. Caller holds p.mu.
func (p *Pool) checkProtectionLocked(b *Buffer, report func(string, ...any)) {
	first := b.firstSlice()
	switch b.prot.Scheme {
	case failure.Replicate:
		for i := uint64(0); i < b.sliceCount(); i++ {
			live := 0
			if back := p.lookupSlice(first + i); back != nil && !p.isDead(back.server) {
				live++
			}
			for _, cp := range b.copies {
				if i < uint64(len(cp)) && !p.isDead(cp[i].Server) {
					live++
				}
			}
			if live == 0 {
				report("buffer %v slice %d: all %d copies on dead servers", b.rng.Start, first+i, b.prot.Copies)
			}
		}
	case failure.ErasureCode:
		if b.ec == nil {
			report("buffer %v declares erasure coding but has no EC state", b.rng.Start)
			return
		}
		for si := range b.ec.stripes {
			st := &b.ec.stripes[si]
			erased := 0
			for j := 0; j < b.prot.K; j++ {
				slIdx := st.firstIdx + uint64(j)
				if slIdx >= b.sliceCount() {
					continue // virtual zero shard, always available
				}
				back := p.lookupSlice(first + slIdx)
				if back == nil || p.isDead(back.server) {
					erased++
				}
			}
			for _, pb := range st.parity {
				if p.isDead(pb.server) {
					erased++
				}
			}
			if erased > b.prot.M {
				report("buffer %v EC stripe %d: %d shards unavailable, tolerance %d",
					b.rng.Start, si, erased, b.prot.M)
			}
		}
	}
}
