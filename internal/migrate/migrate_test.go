package migrate

import (
	"sync"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
)

func boundMap(t *testing.T, slices int, owner addr.ServerID) *addr.GlobalMap {
	t.Helper()
	g := addr.NewGlobalMap()
	if err := g.Bind(addr.Range{Start: 0, Size: int64(slices) * addr.SliceSize}, owner); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAccessMatrixRecordAndDecay(t *testing.T) {
	m := NewAccessMatrix()
	m.Record(3, 1, 10)
	m.Record(3, 2, 4)
	if m.Count(3, 1) != 10 || m.Count(3, 2) != 4 {
		t.Fatal("counts wrong")
	}
	m.Decay()
	if m.Count(3, 1) != 5 || m.Count(3, 2) != 2 {
		t.Fatal("decay wrong")
	}
	// Decaying to zero drops the slice.
	m.Record(9, 0, 1)
	m.Decay() // slice 9 -> 0
	m.Decay()
	m.Decay() // slice 3 -> 0 too
	if len(m.Slices()) != 0 {
		t.Fatalf("slices after full decay: %v", m.Slices())
	}
}

func TestPlanMovesHotRemoteSlice(t *testing.T) {
	owners := boundMap(t, 4, 0)
	m := NewAccessMatrix()
	// Slice 2 is hammered by server 1, barely touched by its owner 0.
	m.Record(2, 1, 100)
	m.Record(2, 0, 5)
	moves, err := Plan(m, owners, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("moves = %+v, want 1", moves)
	}
	mv := moves[0]
	if mv.Slice != 2 || mv.From != 0 || mv.To != 1 {
		t.Fatalf("move = %+v", mv)
	}
	if mv.Gain != 95 {
		t.Fatalf("gain = %d, want 95", mv.Gain)
	}
}

func TestPlanHysteresisKeepsMarginalSlices(t *testing.T) {
	owners := boundMap(t, 2, 0)
	m := NewAccessMatrix()
	// Challenger leads but not by the 2x hysteresis factor.
	m.Record(0, 1, 30)
	m.Record(0, 0, 20)
	moves, err := Plan(m, owners, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("marginal slice moved: %+v", moves)
	}
}

func TestPlanColdSlicesStayPut(t *testing.T) {
	owners := boundMap(t, 2, 0)
	m := NewAccessMatrix()
	m.Record(1, 1, 5) // below MinAccesses=16
	moves, err := Plan(m, owners, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("cold slice moved: %+v", moves)
	}
}

func TestPlanLocalDominantNoMove(t *testing.T) {
	owners := boundMap(t, 2, 0)
	m := NewAccessMatrix()
	m.Record(0, 0, 100)
	m.Record(0, 1, 10)
	moves, err := Plan(m, owners, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("locally-dominant slice moved: %+v", moves)
	}
}

func TestPlanOrdersByGainAndCapsMoves(t *testing.T) {
	owners := boundMap(t, 8, 0)
	m := NewAccessMatrix()
	for s := uint64(0); s < 8; s++ {
		m.Record(s, 1, 50+10*s)
	}
	p := DefaultPolicy()
	p.MaxMoves = 3
	moves, err := Plan(m, owners, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 3 {
		t.Fatalf("moves = %d, want capped 3", len(moves))
	}
	if moves[0].Slice != 7 || moves[1].Slice != 6 || moves[2].Slice != 5 {
		t.Fatalf("not ordered by gain: %+v", moves)
	}
}

func TestPlanSkipsUnmappedSlices(t *testing.T) {
	owners := addr.NewGlobalMap() // nothing bound
	m := NewAccessMatrix()
	m.Record(0, 1, 1000)
	moves, err := Plan(m, owners, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("unmapped slice moved: %+v", moves)
	}
}

func TestPolicyValidation(t *testing.T) {
	p := Policy{HysteresisFactor: 0.5}
	if _, err := Plan(NewAccessMatrix(), addr.NewGlobalMap(), p); err == nil {
		t.Error("hysteresis < 1 accepted")
	}
	p = Policy{HysteresisFactor: 1, MaxMoves: -1}
	if _, err := Plan(NewAccessMatrix(), addr.NewGlobalMap(), p); err == nil {
		t.Error("negative max moves accepted")
	}
}

func TestPlanDeterministicTieBreak(t *testing.T) {
	owners := boundMap(t, 1, 0)
	m := NewAccessMatrix()
	// Servers 1 and 2 tie; lower id must win deterministically.
	m.Record(0, 1, 50)
	m.Record(0, 2, 50)
	for i := 0; i < 5; i++ {
		moves, err := Plan(m, owners, DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) != 1 || moves[0].To != 1 {
			t.Fatalf("tie break: %+v", moves)
		}
	}
}

func TestAccessMatrixConcurrent(t *testing.T) {
	m := NewAccessMatrix()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Record(uint64(i%16), addr.ServerID(g%4), 1)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, s := range m.Slices() {
		for f := addr.ServerID(0); f < 4; f++ {
			total += m.Count(s, f)
		}
	}
	if total != 4000 {
		t.Fatalf("total recorded = %d, want 4000", total)
	}
}

func TestRecordBatch(t *testing.T) {
	m := NewAccessMatrix()
	m.Record(1, 0, 5)
	m.RecordBatch([]Sample{
		{Slice: 1, From: 0, Count: 3},
		{Slice: 1, From: 2, Count: 7},
		{Slice: 4, From: 1, Count: 0}, // zero counts are dropped
		{Slice: 9, From: 1, Count: 2},
	})
	if got := m.Count(1, 0); got != 8 {
		t.Errorf("Count(1,0) = %d want 8", got)
	}
	if got := m.Count(1, 2); got != 7 {
		t.Errorf("Count(1,2) = %d want 7", got)
	}
	if got := m.Count(9, 1); got != 2 {
		t.Errorf("Count(9,1) = %d want 2", got)
	}
	slices := m.Slices()
	if len(slices) != 2 || slices[0] != 1 || slices[1] != 9 {
		t.Errorf("Slices() = %v want [1 9]", slices)
	}
	m.RecordBatch(nil) // no-op
}
