// Package atomichygiene is a fixture: a field touched through
// sync/atomic must never also be read or written plainly.
package atomichygiene

import "sync/atomic"

type counters struct {
	hits int64
	cold int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) readPlain() int64 {
	return c.hits // want "field hits is accessed with sync/atomic"
}

func (c *counters) resetPlain() {
	c.hits = 0 // want "field hits is accessed with sync/atomic"
}

// okAtomic is the compliant access: same field, atomic load.
func (c *counters) okAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

// cold is only ever accessed plainly, so it is never flagged.
func (c *counters) coldBump() {
	c.cold++
}
