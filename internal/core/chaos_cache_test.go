package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/telemetry"
)

// The cache-coherence chaos harness drives random interleavings of cached
// reads, combiner-buffered and direct writes, releases, crash/repair
// cycles, explicit flushes, and migration rounds against a cache-enabled
// pool, checking every read against a flat byte model. The cache is sized
// tiny and the combiner thresholds are tightened so eviction, ghost
// re-admission, and auto-flush all churn constantly; any invalidation gap
// between an owner write and a node's cached copy shows up as a stale
// read. Replay one seed with
//
//	CHAOS_SEED=<n> go test -run TestChaosCacheCoherence ./internal/core/
//
// and widen the sweep with CHAOS_SEEDS=<count>.

const (
	ccServers   = 8
	ccSlicesPer = 24
	ccOps       = 260
	ccMinLive   = 5
	ccMaxBufs   = 5
)

const (
	ccOpAlloc = iota
	ccOpWriteSmall // fits the combiner: buffered when remote
	ccOpWriteLarge // bypasses the combiner: direct write + invalidation
	ccOpRead       // the stale-read oracle
	ccOpRelease
	ccOpCrash // crash a victim, or repair the currently crashed one
	ccOpFlush
	ccOpBalance
)

func genCacheOps(seed int64) []opDesc {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]opDesc, ccOps)
	for i := range ops {
		roll := rng.Intn(100)
		var k int
		switch {
		case roll < 10:
			k = ccOpAlloc
		case roll < 28:
			k = ccOpWriteSmall
		case roll < 38:
			k = ccOpWriteLarge
		case roll < 74:
			k = ccOpRead
		case roll < 80:
			k = ccOpRelease
		case roll < 88:
			k = ccOpCrash
		case roll < 94:
			k = ccOpFlush
		default:
			k = ccOpBalance
		}
		ops[i] = opDesc{kind: opKind(k), a: rng.Uint64(), b: rng.Uint64()}
	}
	return ops
}

type ccStats struct {
	divergence []string
	hits       uint64
	wcWrites   uint64
	flushes    uint64
	crashes    int
	evictions  uint64
	spans      []telemetry.Span
	published  uint64
}

// chaosCacheRun replays one seed's op sequence sequentially (coherence
// here is a per-operation property, so no sim clock is needed; every run
// is a pure function of its seed).
func chaosCacheRun(t *testing.T, seed int64) ccStats {
	t.Helper()
	cfg := Config{
		Placement: alloc.Striped,
		// Trace every op so each run also checks the span-tree oracle:
		// the cache path is where child spans (fill, coherence, flush)
		// actually hang off the op roots.
		Trace: TraceConfig{SampleEvery: 1, RingSize: chaosRingSize, SlowOpNS: -1},
		Cache: CacheConfig{
			Enabled: true,
			// Tiny cache (16 pages across 4 shards) so resident pages are
			// evicted and re-filled constantly, exercising the ghost list.
			CapacityBytes: 16 * 4096,
			Shards:        4,
			// Tight combiner thresholds so auto-flushes fire mid-sequence,
			// not only at explicit flush points.
			WCMaxBytes: 512,
			WCMaxCount: 4,
		},
	}
	for i := 0; i < ccServers; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Name:        "srv",
			Capacity:    ccSlicesPer * SliceSize,
			SharedBytes: ccSlicesPer * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	res := ccStats{}
	diverge := func(format string, args ...any) {
		res.divergence = append(res.divergence, fmt.Sprintf(format, args...))
	}
	var bufs []*chaosBuf
	live := ccServers
	crashed := addr.ServerID(-1)

	liveServer := func(pick uint64) addr.ServerID {
		var liveIDs []addr.ServerID
		for s := 0; s < ccServers; s++ {
			if !p.Dead(addr.ServerID(s)) {
				liveIDs = append(liveIDs, addr.ServerID(s))
			}
		}
		return liveIDs[pick%uint64(len(liveIDs))]
	}

	writeOp := func(idx int, op opDesc, maxLen int) {
		if len(bufs) == 0 {
			return
		}
		cb := bufs[op.a%uint64(len(bufs))]
		off := int64(op.b % uint64(len(cb.model)))
		n := int(op.a%uint64(maxLen)) + 1
		if off+int64(n) > int64(len(cb.model)) {
			n = int(int64(len(cb.model)) - off)
		}
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(uint64(j)*3 + op.a + op.b)
		}
		if err := cb.buf.WriteAt(liveServer(op.a), data, off); err != nil {
			diverge("op %d: write off=%d len=%d: %v", idx, off, n, err)
			return
		}
		copy(cb.model[off:], data)
	}

	for idx, op := range genCacheOps(seed) {
		switch int(op.kind) {
		case ccOpAlloc:
			if len(bufs) >= ccMaxBufs {
				continue
			}
			size := int64(1+op.a%2)*SliceSize - int64(op.b%2000)
			prot := failure.Policy{Scheme: failure.ErasureCode, K: 2, M: 1}
			if op.a%2 == 0 {
				prot = failure.Policy{Scheme: failure.Replicate, Copies: 2}
			}
			b, err := p.AllocProtected(size, liveServer(op.b), prot)
			if err != nil {
				if errors.Is(err, alloc.ErrNoSpace) {
					continue
				}
				diverge("op %d: alloc: %v", idx, err)
				continue
			}
			bufs = append(bufs, &chaosBuf{buf: b, model: make([]byte, size)})
		case ccOpWriteSmall:
			// Small writes land in the combiner when remote; the model
			// applies them immediately, so any read that misses the overlay
			// (or reads a stale flushed copy) diverges.
			writeOp(idx, op, 256)
		case ccOpWriteLarge:
			// Large writes bypass the combiner and must kill every node's
			// cached copy of the touched pages.
			writeOp(idx, op, 5000)
		case ccOpRead:
			if len(bufs) == 0 {
				continue
			}
			cb := bufs[op.a%uint64(len(bufs))]
			off := int64(op.b % uint64(len(cb.model)))
			n := int(op.b%4000) + 1
			if off+int64(n) > int64(len(cb.model)) {
				n = int(int64(len(cb.model)) - off)
			}
			got := make([]byte, n)
			if err := cb.buf.ReadAt(liveServer(op.b>>32), got, off); err != nil {
				diverge("op %d: read off=%d len=%d: %v", idx, off, n, err)
				continue
			}
			if !bytes.Equal(got, cb.model[off:off+int64(n)]) {
				diverge("op %d: stale read off=%d len=%d", idx, off, n)
			}
		case ccOpRelease:
			if len(bufs) == 0 {
				continue
			}
			j := op.a % uint64(len(bufs))
			cb := bufs[j]
			if err := cb.buf.Release(); err != nil {
				diverge("op %d: release: %v", idx, err)
				continue
			}
			probe := make([]byte, 1)
			if err := p.Read(0, cb.buf.Addr(), probe); !errors.Is(err, ErrReleased) {
				diverge("op %d: read after release = %v, want ErrReleased", idx, err)
			}
			bufs = append(bufs[:j], bufs[j+1:]...)
		case ccOpCrash:
			if crashed >= 0 {
				// Repair the standing crash (crash-stop: the server stays
				// dead, its data is rebuilt onto live servers); its cached
				// pages and pending writes must have survived the DropNode
				// purge coherently.
				if _, err := p.RepairServer(crashed); err != nil {
					diverge("op %d: repair srv=%d: %v", idx, crashed, err)
				}
				crashed = -1
				if err := p.CheckInvariants(); err != nil {
					diverge("op %d: invariants after repair: %v", idx, err)
				}
				continue
			}
			if live <= ccMinLive {
				continue
			}
			victim := liveServer(op.a)
			if err := p.Crash(victim); err != nil {
				diverge("op %d: crash srv=%d: %v", idx, victim, err)
				continue
			}
			crashed = victim
			live--
			res.crashes++
		case ccOpFlush:
			if err := p.FlushWriteCombining(); err != nil {
				diverge("op %d: flush: %v", idx, err)
			}
		case ccOpBalance:
			// Migration rebinds slices under the stripe lock and must drop
			// stale cached copies of moved pages.
			if _, err := p.BalanceOnce(); err != nil {
				diverge("op %d: balance: %v", idx, err)
			}
		}
	}

	if crashed >= 0 {
		if _, err := p.RepairServer(crashed); err != nil {
			diverge("final repair srv=%d: %v", crashed, err)
		}
	}
	if err := p.FlushWriteCombining(); err != nil {
		diverge("final flush: %v", err)
	}
	// Final oracle: after the flush every surviving buffer reads back
	// byte-identical from every live server — cached or not.
	for bi, cb := range bufs {
		got := make([]byte, len(cb.model))
		for s := 0; s < ccServers; s++ {
			if p.Dead(addr.ServerID(s)) {
				continue
			}
			if err := cb.buf.ReadAt(addr.ServerID(s), got, 0); err != nil {
				diverge("final read buf %d srv %d: %v", bi, s, err)
				continue
			}
			if !bytes.Equal(got, cb.model) {
				diverge("final read buf %d srv %d diverges", bi, s)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		diverge("invariants at end: %v", err)
	}

	st := p.CacheStats()
	res.hits = st.Hits
	res.wcWrites = st.WCWrites
	res.flushes = st.Flushes
	res.evictions = st.Evictions
	res.spans = p.TraceSpans()
	res.published = p.TracePublished()
	checkSpanTree(diverge, res.spans, res.published)
	return res
}

// TestChaosCacheCoherence is the tiering safety argument as a property
// test: with the page cache and write combiner on, no interleaving of
// reads, writes, releases, crash/repair, flushes, and migrations ever
// returns bytes the flat model does not predict — zero stale reads.
func TestChaosCacheCoherence(t *testing.T) {
	var hits, wcWrites, flushes, evictions uint64
	crashes := 0
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := chaosCacheRun(t, seed)
			for _, d := range res.divergence {
				t.Errorf("seed %d: %s", seed, d)
			}
			hits += res.hits
			wcWrites += res.wcWrites
			flushes += res.flushes
			evictions += res.evictions
			crashes += res.crashes
		})
	}
	// Guard against a vacuously green oracle: the sweep must actually have
	// exercised cache hits, combiner buffering, flushing, and eviction.
	if hits == 0 || wcWrites == 0 || flushes == 0 || evictions == 0 {
		t.Errorf("sweep did not exercise the cache: hits=%d wcWrites=%d flushes=%d evictions=%d",
			hits, wcWrites, flushes, evictions)
	}
	if crashes == 0 {
		t.Errorf("sweep did not exercise crash/repair")
	}
}

// TestChaosCacheRegressionSeed pins the seed that exposed the
// recovery-re-home cache gap: RepairServer rebuilt a dead server's slice
// onto a node that already cached pages of that slice, leaving the new
// owner caching its own local pages (migration handled this; recovery did
// not). The seed is checked in as a named case so the exact interleaving
// stays in the default suite.
func TestChaosCacheRegressionSeed(t *testing.T) {
	const badSeed = 17
	res := chaosCacheRun(t, badSeed)
	for _, d := range res.divergence {
		t.Errorf("seed %d: %s", badSeed, d)
	}
	if res.crashes == 0 {
		t.Fatal("regression seed no longer crashes any server; pick a new seed")
	}
}
