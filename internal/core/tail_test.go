package core

// Tests for the in-process tail-tolerance layer (tail.go): admission
// control determinism and stress, deadline-budget semantics and error
// classification, breaker-driven replica sheds, the zero-alloc contract
// with tail features armed, and the elasticity-under-load chaos property
// test (TestChaosElasticity*, swept by make chaos).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/addr"
	"github.com/lmp-project/lmp/internal/alloc"
	"github.com/lmp-project/lmp/internal/failure"
	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/sizing"
)

// tailClock is a deterministic nanosecond clock for breaker tests.
type tailClock struct{ ns atomic.Int64 }

func (c *tailClock) now() int64              { return c.ns.Load() }
func (c *tailClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// tailTestPool builds the standard 4-server pool with the given tail
// config armed.
func tailTestPool(t *testing.T, tail TailConfig) *Pool {
	t.Helper()
	cfg := Config{Placement: alloc.LocalityAware, Tail: tail}
	for i := 0; i < 4; i++ {
		cfg.Servers = append(cfg.Servers, ServerConfig{
			Name:        "srv",
			Capacity:    16 * SliceSize,
			SharedBytes: 16 * SliceSize,
		})
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tailBreakerPolicy trips after 4+ samples at >=50% failures and stays
// open for an hour of (simulated) clock, so tests control reopening.
func tailBreakerPolicy() rpc.BreakerPolicy {
	return rpc.BreakerPolicy{
		Window:         16,
		MinSamples:     4,
		FailureRatio:   0.5,
		OpenFor:        time.Hour,
		HalfOpenProbes: 1,
	}
}

// TestTailDisabledZeroCost pins the disabled contract: a zero TailConfig
// leaves no admission state, no breakers, and withBudget is an identity.
func TestTailDisabledZeroCost(t *testing.T) {
	p := testPool(t, alloc.LocalityAware)
	if p.tail.limit != 0 || p.tail.breakers != nil || p.tail.budgetNS != 0 {
		t.Fatalf("zero TailConfig armed state: limit=%d budgetNS=%d breakers=%v",
			p.tail.limit, p.tail.budgetNS, p.tail.breakers)
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d, want 0", got)
	}
	if c := p.BreakerCounters(0); c != (rpc.BreakerCounters{}) {
		t.Fatalf("BreakerCounters with breakers off = %+v", c)
	}
	ctx := context.Background()
	got, cancel := p.withBudget(ctx)
	if got != ctx || cancel != nil {
		t.Fatal("withBudget with no budget must be an identity")
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(1, b.Addr(), []byte("plain path")); err != nil {
		t.Fatal(err)
	}
}

// TestTailAdmissionControl saturates the admission budget directly (no
// timing involved) and checks every foreground entry point sheds with
// ErrOverloaded, then recovers once slots free up.
func TestTailAdmissionControl(t *testing.T) {
	p := tailTestPool(t, TailConfig{AdmissionLimit: 2})
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := p.Write(0, b.Addr(), buf); err != nil {
		t.Fatal(err)
	}

	// Occupy both slots; every entry point must now shed, not queue.
	p.tail.inflight.Add(2)
	ops := []struct {
		name string
		call func() error
	}{
		{"Read", func() error { return p.Read(1, b.Addr(), buf) }},
		{"Write", func() error { return p.Write(1, b.Addr(), buf) }},
		{"ReadV", func() error { return p.ReadV(1, []Vec{{Addr: b.Addr(), Data: buf}}) }},
		{"WriteV", func() error { return p.WriteV(1, []Vec{{Addr: b.Addr(), Data: buf}}) }},
		{"ReadCtx", func() error { return p.ReadCtx(context.Background(), 1, b.Addr(), buf) }},
		{"WriteCtx", func() error { return p.WriteCtx(context.Background(), 1, b.Addr(), buf) }},
	}
	for _, op := range ops {
		err := op.call()
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("%s while saturated: got %v, want ErrOverloaded", op.name, err)
		}
		if !errors.Is(err, rpc.ErrOverloaded) {
			t.Fatalf("%s: core and rpc overload sentinels diverged", op.name)
		}
	}
	if got := p.Metrics().Counter("pool.sheds").Value(); got != uint64(len(ops)) {
		t.Fatalf("pool.sheds = %d, want %d", got, len(ops))
	}

	// Free the slots: the same ops all succeed again.
	p.tail.inflight.Add(-2)
	for _, op := range ops {
		if err := op.call(); err != nil {
			t.Fatalf("%s after release: %v", op.name, err)
		}
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("Inflight after drain = %d, want 0 (leaked slot)", got)
	}
}

// TestTailAdmissionStress hammers a small admission budget from many
// goroutines: admitted count never exceeds the limit, every failure is
// ErrOverloaded, and no slot leaks after the drain. Run under -race.
func TestTailAdmissionStress(t *testing.T) {
	const limit, workers, opsEach = 3, 12, 120
	p := tailTestPool(t, TailConfig{AdmissionLimit: limit})
	b, err := p.Alloc(2*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 2*SliceSize)
	if err := p.Write(0, b.Addr(), seed); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var peak atomic.Int64
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := p.Inflight(); got > peak.Load() {
				peak.Store(got)
			}
		}
	}()

	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, SliceSize)
			for i := 0; i < opsEach; i++ {
				err := p.Read(addr.ServerID(w%4), b.Addr(), buf)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				default:
					t.Errorf("worker %d op %d: unexpected error %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	monWG.Wait()

	if got := peak.Load(); got > limit {
		t.Fatalf("observed %d concurrent admitted ops, limit %d", got, limit)
	}
	if ok.Load() == 0 {
		t.Fatal("no op was ever admitted")
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("Inflight after drain = %d, want 0 (leaked slot)", got)
	}
	if total := ok.Load() + shed.Load(); total != workers*opsEach {
		t.Fatalf("ops accounted = %d, want %d", total, workers*opsEach)
	}
	if got := p.Metrics().Counter("pool.sheds").Value(); got != uint64(shed.Load()) {
		t.Fatalf("pool.sheds = %d, callers saw %d sheds", got, shed.Load())
	}
}

// TestTailWithBudget pins the budget-materialization rules: no budget is
// an identity, a caller deadline always wins, and a bare context gets
// the configured budget as its deadline.
func TestTailWithBudget(t *testing.T) {
	p := tailTestPool(t, TailConfig{OpBudget: time.Hour})

	// Caller deadline wins: same context back, no cancel to run.
	caller, cancelCaller := context.WithTimeout(context.Background(), time.Minute)
	defer cancelCaller()
	got, cancel := p.withBudget(caller)
	if got != caller || cancel != nil {
		t.Fatal("caller deadline must win over the op budget")
	}

	// Bare context: budget becomes the deadline.
	got, cancel = p.withBudget(context.Background())
	if cancel == nil {
		t.Fatal("budget not materialized on a bare context")
	}
	defer cancel()
	dl, ok := got.Deadline()
	if !ok {
		t.Fatal("budget context has no deadline")
	}
	if until := time.Until(dl); until <= 50*time.Minute || until > time.Hour {
		t.Fatalf("budget deadline %v out, want ~1h", until)
	}

	// Nil context: treated as Background, still gets the budget.
	got, cancel = p.withBudget(nil)
	if cancel == nil {
		t.Fatal("budget not materialized on nil context")
	}
	defer cancel()
	if _, ok := got.Deadline(); !ok {
		t.Fatal("nil-context budget has no deadline")
	}
}

// TestTailDeadlineClassification pins the error contract: an expired
// deadline surfaces as ErrDeadlineExceeded (and context.DeadlineExceeded
// for callers matching on the stdlib), while a plain cancellation stays
// a cancellation.
func TestTailDeadlineClassification(t *testing.T) {
	p := tailTestPool(t, TailConfig{OpBudget: time.Hour})
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	// The lazily-armed deadline timer may not have fired yet; wait for
	// the context to report done so the check below is deterministic.
	<-expired.Done()
	err = p.ReadCtx(expired, 1, b.Addr(), buf)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v must also match context.DeadlineExceeded", err)
	}

	cancelled, cause := context.WithCancel(context.Background())
	cause()
	err = p.WriteCtx(cancelled, 1, b.Addr(), buf)
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("cancellation misclassified as deadline: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestTailBudgetExpiresDeterministic drives a budget-derived context to
// expiry and then issues the op: the configured OpBudget must surface as
// ErrDeadlineExceeded through the public entry points.
func TestTailBudgetExpiresDeterministic(t *testing.T) {
	p := tailTestPool(t, TailConfig{OpBudget: time.Nanosecond})
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize the budget exactly as the entry points do, wait for it
	// to pass, then call with it: the caller-deadline-wins rule routes it
	// straight to classification with no timing sensitivity.
	ctx, cancel := p.withBudget(context.Background())
	if cancel == nil {
		t.Fatal("budget not materialized")
	}
	defer cancel()
	<-ctx.Done()
	err = p.ReadCtx(ctx, 1, b.Addr(), make([]byte, 16))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired budget: got %v, want ErrDeadlineExceeded", err)
	}
}

// TestTailBudgetExpiresMidOp catches a budget expiring between slice
// segments of a large read: with a 1ns budget the deadline timer fires
// while the multi-slice copy is in flight. Bounded retries absorb the
// (unlikely) schedule where the whole op beats the timer.
func TestTailBudgetExpiresMidOp(t *testing.T) {
	p := tailTestPool(t, TailConfig{OpBudget: time.Nanosecond})
	b, err := p.Alloc(8*SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8*SliceSize)
	for i := 0; i < 100; i++ {
		err := p.ReadCtx(context.Background(), 1, b.Addr(), buf)
		if err == nil {
			continue // beat the timer; try again
		}
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("attempt %d: got %v, want ErrDeadlineExceeded", i, err)
		}
		return
	}
	t.Fatal("1ns budget never expired across 100 16MiB reads")
}

// TestTailReplicaShedOnOpenBreaker trips the owner's breaker and checks
// reads of a replica-protected buffer are served from a live copy with
// committed bytes, writes still reach the primary (and its replicas),
// and the shed counters advance.
func TestTailReplicaShedOnOpenBreaker(t *testing.T) {
	clk := &tailClock{}
	p := tailTestPool(t, TailConfig{Breaker: tailBreakerPolicy(), NowNS: clk.now})
	b, err := p.AllocProtected(2*SliceSize, 0, failure.Policy{Scheme: failure.Replicate, Copies: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*SliceSize)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	if err := p.Write(0, b.Addr(), data); err != nil {
		t.Fatal(err)
	}
	owner, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Feed transient failures until the owner's breaker opens.
	for i := 0; i < 8; i++ {
		p.ReportAccess(owner, time.Millisecond, fmt.Errorf("injected: %w", rpc.ErrTransient))
	}
	if !p.breakerOpen(owner) {
		t.Fatalf("server %d breaker still %v after failure burst", owner, p.BreakerCounters(owner).State)
	}
	if c := p.BreakerCounters(owner); c.Trips == 0 {
		t.Fatalf("no trip recorded: %+v", c)
	}

	// Reads shed to the replica and still return committed bytes.
	got := make([]byte, 2*SliceSize)
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatalf("read with owner degraded: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("replica shed returned wrong bytes")
	}
	sheds := p.Metrics().Counter("pool.reads.replica_shed").Value()
	if sheds == 0 {
		t.Fatal("no replica shed recorded for a degraded-owner read")
	}

	// Writes still go to the primary and propagate to replicas: a
	// subsequent (shed) read sees the new bytes.
	patch := []byte("written while owner degraded")
	if err := p.Write(1, b.Addr()+100, patch); err != nil {
		t.Fatalf("write with owner degraded: %v", err)
	}
	copy(data[100:], patch)
	if err := p.Read(2, b.Addr(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("shed read missed a write committed while the owner was degraded")
	}

	// With every server degraded there is no live copy left: protected
	// reads fail fast with ErrServerDegraded instead of blocking.
	for s := 0; s < 4; s++ {
		for i := 0; i < 8; i++ {
			p.ReportAccess(addr.ServerID(s), time.Millisecond, fmt.Errorf("injected: %w", rpc.ErrTransient))
		}
	}
	err = p.Read(1, b.Addr(), got)
	if !errors.Is(err, ErrServerDegraded) {
		t.Fatalf("all servers degraded: got %v, want ErrServerDegraded", err)
	}
	if fails := p.Metrics().Counter("pool.reads.degraded_fail").Value(); fails == 0 {
		t.Fatal("degraded fail not counted")
	}

	// After OpenFor elapses the breaker half-opens and traffic recovers.
	clk.advance(2 * time.Hour)
	for i := 0; i < 8; i++ {
		for s := 0; s < 4; s++ {
			p.ReportAccess(addr.ServerID(s), time.Microsecond, nil)
		}
	}
	if err := p.Read(1, b.Addr(), got); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-recovery read returned wrong bytes")
	}
}

// TestTailDegradedUnprotectedRead pins the unprotected case: an open
// owner breaker with no replica to shed to fails the read fast with
// ErrServerDegraded, and writes are unaffected.
func TestTailDegradedUnprotectedRead(t *testing.T) {
	clk := &tailClock{}
	p := tailTestPool(t, TailConfig{Breaker: tailBreakerPolicy(), NowNS: clk.now})
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(0, b.Addr(), []byte("unprotected")); err != nil {
		t.Fatal(err)
	}
	owner, err := p.OwnerOf(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.ReportAccess(owner, time.Millisecond, fmt.Errorf("injected: %w", rpc.ErrTransient))
	}
	err = p.Read(1, b.Addr(), make([]byte, 16))
	if !errors.Is(err, ErrServerDegraded) || !errors.Is(err, rpc.ErrServerDegraded) {
		t.Fatalf("unprotected degraded read: got %v, want ErrServerDegraded", err)
	}
	// The owner still accepts writes — degradation is slow, not dead.
	if err := p.Write(1, b.Addr()+64, []byte("still writable")); err != nil {
		t.Fatalf("write to degraded owner: %v", err)
	}
}

// TestTailAllocFree extends the zero-alloc contract to the armed tail
// path: with admission control and breakers on (budget off), the
// unhedged fast path must not allocate per op.
func TestTailAllocFree(t *testing.T) {
	clk := &tailClock{}
	p, err := New(Config{
		Servers: []ServerConfig{
			{Name: "a", Capacity: 64 << 20, SharedBytes: 32 << 20},
			{Name: "b", Capacity: 64 << 20, SharedBytes: 32 << 20},
		},
		Tail: TailConfig{
			AdmissionLimit: 64,
			Breaker:        tailBreakerPolicy(),
			NowNS:          clk.now,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(SliceSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Read(1, b.Addr(), buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("tail-armed read allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := p.Write(1, b.Addr()+4096, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("tail-armed write allocates %.1f per op, want 0", n)
	}
	if got := p.Inflight(); got != 0 {
		t.Fatalf("Inflight after runs = %d, want 0", got)
	}
}

// --- Elasticity under load -------------------------------------------

// elasticWorker owns one buffer and a shadow model of its bytes; its op
// stream is derived from the seed alone so every worker's behaviour is
// reproducible even though the cross-worker interleaving is not — the
// assertions (own reads match own shadow) are interleaving-independent.
type elasticWorker struct {
	id     int
	buf    *Buffer
	shadow []byte
	rng    *rand.Rand
}

func (w *elasticWorker) run(t *testing.T, p *Pool, ops int) {
	from := addr.ServerID(w.id % 4)
	size := len(w.shadow)
	for i := 0; i < ops; i++ {
		switch r := w.rng.Intn(100); {
		case r < 40: // write a random range, mirror into the shadow
			off := w.rng.Intn(size)
			n := w.rng.Intn(size-off) + 1
			if n > 64<<10 {
				n = 64 << 10
			}
			data := make([]byte, n)
			w.rng.Read(data)
			if err := p.Write(from, w.buf.Addr()+addr.Logical(off), data); err != nil {
				t.Errorf("worker %d op %d: write: %v", w.id, i, err)
				return
			}
			copy(w.shadow[off:], data)
		case r < 80: // read a random range, must match the shadow
			off := w.rng.Intn(size)
			n := w.rng.Intn(size-off) + 1
			if n > 64<<10 {
				n = 64 << 10
			}
			got := make([]byte, n)
			if err := p.Read(from, w.buf.Addr()+addr.Logical(off), got); err != nil {
				t.Errorf("worker %d op %d: read: %v", w.id, i, err)
				return
			}
			if !bytes.Equal(got, w.shadow[off:off+n]) {
				t.Errorf("worker %d op %d: read mismatch at offset %d len %d", w.id, i, off, n)
				return
			}
		case r < 90: // vectored round trip across both slices
			a := make([]byte, 128)
			b := make([]byte, 128)
			w.rng.Read(a)
			w.rng.Read(b)
			off2 := size - 256
			vecs := []Vec{
				{Addr: w.buf.Addr(), Data: a},
				{Addr: w.buf.Addr() + addr.Logical(off2), Data: b},
			}
			if err := p.WriteV(from, vecs); err != nil {
				t.Errorf("worker %d op %d: writev: %v", w.id, i, err)
				return
			}
			copy(w.shadow[0:], a)
			copy(w.shadow[off2:], b)
		default: // migrate one of our slices to a random server
			s := addr.SliceOf(w.buf.Addr()) + uint64(w.rng.Intn(size/int(SliceSize)))
			// Target may be full or mid-resize; failure is allowed, data
			// loss is not (the next reads verify).
			_ = p.MigrateSlice(s, addr.ServerID(w.rng.Intn(4)))
		}
	}
}

// runElasticityChaos races seeded read/write/migrate workers against
// continuous SizeOnce/ShrinkShared churn, then checks every worker's
// shadow still matches and the pool invariants hold.
func runElasticityChaos(t *testing.T, seed int64) {
	t.Helper()
	const workers = 4
	const opsPerWorker = 150
	p := tailTestPool(t, TailConfig{AdmissionLimit: 64})

	ws := make([]*elasticWorker, workers)
	for i := range ws {
		b, err := p.Alloc(2*SliceSize, addr.ServerID(i))
		if err != nil {
			t.Fatal(err)
		}
		w := &elasticWorker{
			id:     i,
			buf:    b,
			shadow: make([]byte, 2*SliceSize),
			rng:    rand.New(rand.NewSource(seed*31 + int64(i))),
		}
		w.rng.Read(w.shadow)
		if err := p.Write(addr.ServerID(i), b.Addr(), w.shadow); err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}

	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *elasticWorker) {
			defer wg.Done()
			w.run(t, p, opsPerWorker)
		}(w)
	}

	// Sizing churn on this goroutine until the workers drain: SizeOnce
	// repeatedly reshapes every server's shared region (grow-then-shrink
	// with compaction) while foreground traffic is live. Individual
	// shrinks may be blocked by fragmentation — SizeOnce absorbs that —
	// but the optimizer run itself must never fail on feasible loads.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	churn := rand.New(rand.NewSource(seed * 131))
	loads := make([]sizing.ServerLoad, 4)
	rounds := 0
	for {
		select {
		case <-done:
		default:
		}
		select {
		case <-done:
			goto drained
		default:
		}
		for i := range loads {
			loads[i] = sizing.ServerLoad{
				Capacity:     16 * SliceSize,
				SharedDemand: int64(8+churn.Intn(9)) * SliceSize,
				SharedWeight: 1,
			}
		}
		if _, err := p.SizeOnce(loads, 16*SliceSize); err != nil {
			t.Errorf("round %d: SizeOnce: %v", rounds, err)
			goto drained
		}
		// Direct shrink pressure on one server; fragmentation may refuse.
		_ = p.ShrinkShared(addr.ServerID(churn.Intn(4)), int64(8+churn.Intn(9))*SliceSize)
		rounds++
	}
drained:
	<-done
	if t.Failed() {
		t.Fatalf("seed %d failed (churn rounds: %d)", seed, rounds)
	}

	// Post-churn: every shadow intact, invariants hold, and one final
	// grow round restores headroom so the check isn't capacity-limited.
	for _, w := range ws {
		got := make([]byte, len(w.shadow))
		if err := p.Read(addr.ServerID(w.id), w.buf.Addr(), got); err != nil {
			t.Fatalf("seed %d: final read worker %d: %v", seed, w.id, err)
		}
		if !bytes.Equal(got, w.shadow) {
			t.Fatalf("seed %d: worker %d data diverged from shadow after churn", seed, w.id)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: invariants after churn: %v", seed, err)
	}
	if rounds == 0 {
		t.Logf("seed %d: workers drained before any churn round", seed)
	}
}

// TestChaosElasticityUnderLoad sweeps the seeded elasticity scenario
// (CHAOS_SEED pins one seed, CHAOS_SEEDS widens; runs under -race in
// make chaos): shared-region resizing and compaction must never corrupt,
// lose, or misroute foreground traffic.
func TestChaosElasticityUnderLoad(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runElasticityChaos(t, seed)
		})
	}
}
