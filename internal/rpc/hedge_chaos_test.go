package rpc_test

// Chaos property test for hedged reads: seeded delay-only link
// degradation over random read keys racing concurrent writers, checked
// against a versioned shadow model. Lives in package rpc_test because it
// stacks the chaos injector (which imports rpc) over real transports.
//
// Determinism: reads are issued sequentially from one goroutine with
// PDelay = 1, so every primary call defers through the delay scheduler
// and (with an instantly-firing hedge timer) every read hedges — the
// injector draws verdicts in the fixed order [p0, s0, p1, s1, ...]
// regardless of which leg completes first, and the fault trace of a seed
// is byte-identical across runs even though writers race the reads on
// real goroutines. Runs under -race in make chaos.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/chaos"
	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/sim"
)

// hedgeChaosSeeds resolves the sweep like the core chaos suite:
// CHAOS_SEED pins one seed for replay, CHAOS_SEEDS widens (make chaos
// passes 50), default is a fast pinned smoke set.
func hedgeChaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", v, err)
		}
		return []int64{n}
	}
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CHAOS_SEEDS=%q: %v", v, err)
		}
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		return seeds
	}
	return []int64{1, 7, 42, 1337, 90125}
}

const (
	hedgeKeys    = 8
	hedgeValLen  = 64
	methKVRead   = 1
	hedgeReads   = 25
	hedgeWriters = 3
)

// kvStore is the shared backing both daemons serve: per-key versions
// with payloads derived from the version. Writers mutate primary and
// replica atomically (one store, one lock) — the stand-in for the commit
// window freezing replica bytes during a foreground write, which is what
// makes hedging to a replica coherence-safe.
type kvStore struct {
	mu      sync.Mutex
	version [hedgeKeys]uint64
}

// pattern derives key k's payload at version v; any byte mismatch
// against it is a torn read.
func pattern(k byte, v uint64) []byte {
	out := make([]byte, hedgeValLen)
	r := rand.New(rand.NewSource(int64(v)<<8 | int64(k)))
	for i := range out {
		out[i] = byte(r.Intn(256))
	}
	return out
}

func (s *kvStore) read(k byte) (uint64, []byte) {
	s.mu.Lock()
	v := s.version[k]
	s.mu.Unlock()
	return v, pattern(k, v)
}

func (s *kvStore) bump(k byte) {
	s.mu.Lock()
	s.version[k]++
	s.mu.Unlock()
}

func (s *kvStore) current(k byte) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version[k]
}

// startKVServer serves the store over a real transport: response =
// version(8) || pattern bytes, snapshotted under the store lock.
func startKVServer(t *testing.T, store *kvStore) string {
	t.Helper()
	s := rpc.NewServer()
	s.Handle(methKVRead, func(p []byte) ([]byte, error) {
		if len(p) != 1 || p[0] >= hedgeKeys {
			return nil, fmt.Errorf("bad key")
		}
		v, val := store.read(p[0])
		resp := make([]byte, 8+len(val))
		binary.BigEndian.PutUint64(resp, v)
		copy(resp[8:], val)
		return resp, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr
}

// runHedgeChaos executes one seeded scenario and returns the injector's
// fault trace. Every invariant violation fails t with the seed named.
func runHedgeChaos(t *testing.T, seed int64) string {
	t.Helper()
	store := &kvStore{}
	addr0 := startKVServer(t, store)
	addr1 := startKVServer(t, store)
	c0, err := rpc.Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := rpc.Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{
		Seed:     seed,
		PDelay:   1.0, // every call defers, so every read hedges
		MaxDelay: sim.Duration(10 * time.Millisecond),
	})
	// Map simulated delays onto real timers at 1/10 scale with a 200µs
	// floor: the floor guarantees no primary can resolve before the
	// (instant) hedge timer fires, so every read draws both verdicts and
	// the trace shape is schedule-independent; the scale keeps the sweep
	// fast while the ordering the seed dictates still plays out.
	in.SetDelayScheduler(func(d sim.Duration, fire func()) {
		time.AfterFunc(time.Duration(d)/10+200*time.Microsecond, fire)
	})
	primary := in.WrapTransport(0, c0)
	replica := in.WrapTransport(1, c1)

	h := rpc.NewHedger(primary, replica, rpc.HedgePolicy{})
	// Fire the hedge immediately and deterministically: the adaptive
	// delay is exercised by the unit tests; here every read must draw a
	// secondary verdict so the rng consumption order is seed-only.
	h.Timer = func(time.Duration) (<-chan struct{}, func()) {
		ch := make(chan struct{})
		close(ch)
		return ch, func() {}
	}

	// Writers race the reads, bumping versions through the shared store
	// (primary and replica atomically, as the commit window guarantees).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes atomic.Int64
	for w := 0; w < hedgeWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed ^ int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				store.bump(byte(r.Intn(hedgeKeys)))
				writes.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}

	keyRNG := rand.New(rand.NewSource(seed * 7))
	for i := 0; i < hedgeReads; i++ {
		k := byte(keyRNG.Intn(hedgeKeys))
		vBefore := store.current(k)
		resp, err := h.Call(methKVRead, []byte{k})
		if err != nil {
			t.Fatalf("seed %d read %d: %v", seed, i, err)
		}
		vAfter := store.current(k)
		if len(resp) != 8+hedgeValLen {
			t.Fatalf("seed %d read %d: short response %d", seed, i, len(resp))
		}
		v := binary.BigEndian.Uint64(resp)
		if v < vBefore || v > vAfter {
			t.Fatalf("seed %d read %d key %d: stale/future version %d outside [%d,%d]",
				seed, i, k, v, vBefore, vAfter)
		}
		if !bytes.Equal(resp[8:], pattern(k, v)) {
			t.Fatalf("seed %d read %d key %d: torn read at version %d", seed, i, k, v)
		}
	}
	close(stop)
	wg.Wait()

	st := h.Stats()
	if st.Hedges != hedgeReads {
		t.Fatalf("seed %d: %d hedges fired, want every one of %d reads", seed, st.Hedges, hedgeReads)
	}
	if st.HedgeWins+st.PrimaryWins != hedgeReads {
		t.Fatalf("seed %d: wins %d+%d do not cover %d reads", seed, st.HedgeWins, st.PrimaryWins, hedgeReads)
	}
	return in.TraceString()
}

// TestChaosHedgedReads sweeps a small seed list (including the pinned
// regression seed): no stale or torn read may escape while hedges race
// writers, and one seed must produce one fault trace, byte for byte,
// across two full runs.
func TestChaosHedgedReads(t *testing.T) {
	for _, seed := range hedgeChaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := runHedgeChaos(t, seed)
			second := runHedgeChaos(t, seed)
			if first != second {
				t.Fatalf("seed %d: fault trace diverged across runs:\n--- run 1\n%s--- run 2\n%s",
					seed, first, second)
			}
			if first == "" {
				t.Fatalf("seed %d: empty fault trace with PDelay=1", seed)
			}
		})
	}
}

// TestChaosHedgedReadsRegressionSeed pins the pinned seed's trace shape:
// with PDelay=1 and an always-firing hedge, the trace is exactly
// alternating primary/replica delay verdicts — 2 per read. A change in
// rng consumption order (an extra draw, a reordered roll) breaks this
// before it breaks anything subtle.
func TestChaosHedgedReadsRegressionSeed(t *testing.T) {
	trace := runHedgeChaos(t, 42)
	var lines int
	for _, b := range []byte(trace) {
		if b == '\n' {
			lines++
		}
	}
	if lines != 2*hedgeReads {
		t.Fatalf("seed 42: %d trace events, want exactly %d (primary+replica per read):\n%s",
			lines, 2*hedgeReads, trace)
	}
}
