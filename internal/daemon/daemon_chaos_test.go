package daemon

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/lmp-project/lmp/internal/chaos"
	"github.com/lmp-project/lmp/internal/rpc"
	"github.com/lmp-project/lmp/internal/sim"
)

// TestDaemonSurvivesInjectedTransportFaults runs the full live stack —
// typed client → retrier → chaos link → multiplexed TCP client → lmpd —
// with seeded drop injection, and requires every operation to succeed
// through retries with no data corruption.
func TestDaemonSurvivesInjectedTransportFaults(t *testing.T) {
	s, err := NewServer("chaotic", 1<<22, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	raw, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{Seed: 21, PDrop: 0.25})
	r := &rpc.Retrier{
		T:      in.WrapTransport(0, raw),
		Policy: rpc.RetryPolicy{MaxAttempts: 12, BaseBackoff: time.Microsecond, MaxBackoff: 8 * time.Microsecond},
	}
	c := WrapCaller(r)

	off, err := c.Alloc(4096)
	if err != nil {
		t.Fatalf("alloc through chaos: %v", err)
	}
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i * 7)
	}
	for round := 0; round < 30; round++ {
		if err := c.Write(off, want); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		got, err := c.Read(off, len(want))
		if err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: data corrupted through chaos transport", round)
		}
	}
	if r.Healed() == 0 {
		t.Fatal("chaos layer injected no drops (inert test)")
	}
	drops := 0
	for _, ev := range in.Trace() {
		if ev.Kind == chaos.FaultDrop {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("trace recorded no drops despite healed retries")
	}
}

// runPipelinedChaosBurst drives bursts of pipelined, batched calls
// through seeded fault injection — the full live stack with the async
// path: typed async client → retrier → chaos link → batched multiplexed
// TCP client → lmpd. Faults are drawn per logical call at issue time, so
// drops and dups land between calls that share a wire batch. It returns
// the injector's rendered fault trace.
func runPipelinedChaosBurst(t *testing.T, seed int64) []string {
	t.Helper()
	s, err := NewServer("pipelined", 1<<22, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	raw, err := rpc.DialBatched(addr, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{Seed: seed, PDrop: 0.25, PDup: 0.15})
	r := &rpc.Retrier{
		T:      in.WrapTransport(0, raw),
		Policy: rpc.RetryPolicy{MaxAttempts: 16, BaseBackoff: time.Microsecond, MaxBackoff: 8 * time.Microsecond},
	}
	c := WrapCaller(r)

	const bursts, width, chunk = 6, 16, 64
	off, err := c.Alloc(width * chunk)
	if err != nil {
		t.Fatalf("alloc through chaos: %v", err)
	}
	for round := 0; round < bursts; round++ {
		// Issue the whole write burst before waiting on any reply: every
		// call is in flight at once, and the doorbell window packs the
		// survivors of the fault roll into shared batch frames.
		want := make([][]byte, width)
		writes := make([]*rpc.Future, width)
		for i := 0; i < width; i++ {
			data := bytes.Repeat([]byte{byte(round*31 + i)}, chunk)
			want[i] = data
			writes[i] = c.WriteAsync(nil, off+int64(i*chunk), data)
		}
		for i, f := range writes {
			if _, err := f.Wait(); err != nil {
				t.Fatalf("round %d write %d: %v", round, i, err)
			}
		}
		reads := make([]*rpc.Future, width)
		for i := 0; i < width; i++ {
			reads[i] = c.ReadAsync(nil, off+int64(i*chunk), chunk)
		}
		for i, f := range reads {
			got, err := f.Wait()
			if err != nil {
				t.Fatalf("round %d read %d: %v", round, i, err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("round %d read %d: corrupted through batched chaos transport", round, i)
			}
		}
	}
	if st := raw.Stats(); st.BatchedCalls < 2 {
		t.Fatalf("bursts produced no batched frames: %+v", st)
	}
	if r.Healed() == 0 {
		t.Fatal("chaos layer injected no faults the retrier had to heal (inert test)")
	}
	var drops, dups int
	trace := in.Trace()
	out := make([]string, len(trace))
	for i, ev := range trace {
		out[i] = ev.String()
		switch ev.Kind {
		case chaos.FaultDrop:
			drops++
		case chaos.FaultDup:
			dups++
		}
	}
	if drops == 0 || dups == 0 {
		t.Fatalf("seed %d drew drops=%d dups=%d; want both > 0 between batched calls", seed, drops, dups)
	}
	return out
}

// TestDaemonPipelinedChaosDeterministic is the pinned-seed regression
// for the pipelined transport: seed 31337 must draw drops and dups
// between batched in-flight calls, every logical call must heal, and
// running the same seed twice must replay the identical fault trace.
func TestDaemonPipelinedChaosDeterministic(t *testing.T) {
	const pinnedSeed = 31337
	first := runPipelinedChaosBurst(t, pinnedSeed)
	second := runPipelinedChaosBurst(t, pinnedSeed)
	if len(first) != len(second) {
		t.Fatalf("run-twice divergence: %d events vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run-twice divergence at event %d:\n  first:  %s\n  second: %s", i, first[i], second[i])
		}
	}
}

// TestDaemonPipelinedCrashFailsInflightBurst checks crash-stop against a
// pipelined burst: a dead verdict drawn mid-burst fails that call (and
// only that call) with rpc.ErrServerDead while its batch-mates complete.
func TestDaemonPipelinedCrashFailsInflightBurst(t *testing.T) {
	s, err := NewServer("crashy", 1<<22, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	raw, err := rpc.DialBatched(addr, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{Seed: 9})
	link := in.WrapTransport(0, raw)
	c := WrapCaller(link)

	off, err := c.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 64)
	// Half the burst issued healthy, then the crash verdict lands, then
	// the rest of the burst is issued against the dead server.
	healthy := make([]*rpc.Future, 8)
	for i := range healthy {
		healthy[i] = c.WriteAsync(nil, off+int64(i*64), data)
	}
	in.CrashAt(10, 0)
	eng.RunUntil(10)
	doomed := make([]*rpc.Future, 8)
	for i := range doomed {
		doomed[i] = c.WriteAsync(nil, off+int64((8+i)*64), data)
	}
	for i, f := range healthy {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("pre-crash write %d: %v", i, err)
		}
	}
	for i, f := range doomed {
		if _, err := f.Wait(); !errors.Is(err, rpc.ErrServerDead) {
			t.Fatalf("post-crash write %d: %v, want ErrServerDead", i, err)
		}
	}
	in.RestoreAt(20, 0)
	eng.RunUntil(20)
	if _, err := c.ReadAsync(nil, off, 64).Wait(); err != nil {
		t.Fatalf("read after restore: %v", err)
	}
}

// TestDaemonCrashStopFailsFast checks the dead-server path end to end: a
// chaos crash makes every call fail with rpc.ErrServerDead without
// touching the network, the retrier refuses to retry it, and a restore
// brings the connection back.
func TestDaemonCrashStopFailsFast(t *testing.T) {
	s, err := NewServer("doomed", 1<<22, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	raw, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	eng := sim.NewEngine()
	in := chaos.New(eng, chaos.Config{Seed: 5})
	r := &rpc.Retrier{T: in.WrapTransport(0, raw), Policy: rpc.DefaultRetryPolicy()}
	c := WrapCaller(r)

	if _, err := c.Info(); err != nil {
		t.Fatalf("healthy info: %v", err)
	}
	in.CrashAt(10, 0)
	eng.RunUntil(10)
	_, err = c.Info()
	if !errors.Is(err, rpc.ErrServerDead) {
		t.Fatalf("call to crashed daemon: %v", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("retrier retried a dead server %d times", r.Retries())
	}
	in.RestoreAt(20, 0)
	eng.RunUntil(20)
	if _, err := c.Info(); err != nil {
		t.Fatalf("info after restore: %v", err)
	}
}
