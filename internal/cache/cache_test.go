package cache

import (
	"fmt"
	"sync"
	"testing"
)

func pageData(ps int64, tag byte) []byte {
	d := make([]byte, ps)
	for i := range d {
		d[i] = tag
	}
	return d
}

func newTest(t *testing.T, pages int, shards int) *Cache {
	t.Helper()
	c, err := New(Config{CapacityBytes: int64(pages) * 64, PageSize: 64, Shards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestCacheBasicPutGet(t *testing.T) {
	c := newTest(t, 8, 1)
	if got := c.ReadAt(3, make([]byte, 8), 0); got {
		t.Fatal("hit on empty cache")
	}
	c.Put(3, pageData(64, 0xAB))
	dst := make([]byte, 8)
	if !c.ReadAt(3, dst, 16) {
		t.Fatal("miss after Put")
	}
	for _, b := range dst {
		if b != 0xAB {
			t.Fatalf("read %x want AB", b)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Pages != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheWriteAtUpdatesResidentOnly(t *testing.T) {
	c := newTest(t, 4, 1)
	if c.WriteAt(9, []byte{1}, 0) {
		t.Fatal("WriteAt admitted a page")
	}
	c.Put(9, pageData(64, 0))
	if !c.WriteAt(9, []byte{7, 7}, 10) {
		t.Fatal("WriteAt missed resident page")
	}
	dst := make([]byte, 3)
	c.ReadAt(9, dst, 9)
	if dst[0] != 0 || dst[1] != 7 || dst[2] != 7 {
		t.Fatalf("got %v", dst)
	}
}

func TestCacheEvictionPrefersCold(t *testing.T) {
	// Capacity 4 pages, one shard. Make pages 0,1 hot via resident
	// re-reference, then stream 2..9: the hot pages must survive.
	c := newTest(t, 4, 1)
	for p := uint64(0); p < 4; p++ {
		c.Put(p, pageData(64, byte(p)))
	}
	for i := 0; i < 3; i++ {
		c.ReadAt(0, make([]byte, 1), 0)
		c.ReadAt(1, make([]byte, 1), 0)
	}
	for p := uint64(4); p < 10; p++ {
		c.Put(p, pageData(64, byte(p)))
	}
	if !c.ReadAt(0, make([]byte, 1), 0) || !c.ReadAt(1, make([]byte, 1), 0) {
		t.Fatalf("hot pages evicted by cold stream; resident=%d", c.Len())
	}
	if c.Len() != 4 {
		t.Fatalf("resident %d want 4", c.Len())
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("expected evictions")
	}
}

func TestCacheGhostReadmitIsHot(t *testing.T) {
	c := newTest(t, 2, 1)
	c.Put(1, pageData(64, 1))
	c.Put(2, pageData(64, 2))
	c.Put(3, pageData(64, 3)) // evicts one of 1,2 → ghost
	// Find the evicted page and re-admit it.
	var evicted uint64
	for _, p := range []uint64{1, 2} {
		if !c.ReadAt(p, make([]byte, 1), 0) {
			evicted = p
		}
	}
	if evicted == 0 {
		t.Fatal("nothing evicted")
	}
	c.Put(evicted, pageData(64, 9))
	if c.Stats().GhostReadmits != 1 {
		t.Fatalf("readmits %d want 1", c.Stats().GhostReadmits)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newTest(t, 8, 2)
	for p := uint64(0); p < 6; p++ {
		c.Put(p, pageData(64, byte(p)))
	}
	if !c.Invalidate(3) {
		t.Fatal("Invalidate(3) found nothing")
	}
	if c.Invalidate(3) {
		t.Fatal("double invalidate reported resident")
	}
	if c.ReadAt(3, make([]byte, 1), 0) {
		t.Fatal("read hit after invalidate")
	}
	if n := c.InvalidateRange(0, 6); n != 5 {
		t.Fatalf("InvalidateRange removed %d want 5", n)
	}
	if c.Len() != 0 {
		t.Fatalf("resident %d want 0", c.Len())
	}
	// Slots must be reusable after invalidation.
	for p := uint64(10); p < 16; p++ {
		c.Put(p, pageData(64, byte(p)))
	}
	if c.Len() != 6 {
		t.Fatalf("resident %d want 6 after refill", c.Len())
	}
}

func TestCacheInvalidateAllForgetsGhosts(t *testing.T) {
	c := newTest(t, 2, 1)
	c.Put(1, pageData(64, 1))
	c.Put(2, pageData(64, 2))
	c.Put(3, pageData(64, 3)) // pushes a ghost
	if n := c.InvalidateAll(); n != 2 {
		t.Fatalf("InvalidateAll removed %d want 2", n)
	}
	c.Put(1, pageData(64, 1))
	c.Put(2, pageData(64, 2))
	if c.Stats().GhostReadmits != 0 {
		t.Fatal("ghost list survived InvalidateAll")
	}
}

func TestCacheDrainHits(t *testing.T) {
	c := newTest(t, 8, 2)
	c.Put(4, pageData(64, 4))
	c.Put(5, pageData(64, 5))
	for i := 0; i < 3; i++ {
		c.ReadAt(4, make([]byte, 1), 0)
	}
	c.ReadAt(5, make([]byte, 1), 0)
	got := map[uint64]uint64{}
	c.DrainHits(func(page, hits uint64) { got[page] = hits })
	if got[4] != 3 || got[5] != 1 {
		t.Fatalf("drained %v", got)
	}
	got = map[uint64]uint64{}
	c.DrainHits(func(page, hits uint64) { got[page] = hits })
	if len(got) != 0 {
		t.Fatalf("second drain returned %v", got)
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c, err := New(Config{CapacityBytes: 0, PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, pageData(64, 1))
	if c.ReadAt(1, make([]byte, 1), 0) {
		t.Fatal("zero-capacity cache admitted a page")
	}
}

func TestCacheRejectsBadPageSize(t *testing.T) {
	if _, err := New(Config{CapacityBytes: 1024, PageSize: 100}); err == nil {
		t.Fatal("accepted non-power-of-two page size")
	}
}

func TestCacheShardCountBoundedByPages(t *testing.T) {
	// 2 pages of capacity cannot support 16 shards; shard count must
	// shrink so each shard holds at least one page.
	c, err := New(Config{CapacityBytes: 128, PageSize: 64, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(0, pageData(64, 1))
	c.Put(1, pageData(64, 2))
	if c.Len() == 0 {
		t.Fatal("no pages admitted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newTest(t, 128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < 2000; i++ {
				p := uint64((g*31 + i) % 200)
				switch i % 4 {
				case 0:
					c.Put(p, pageData(64, byte(p)))
				case 1:
					if c.ReadAt(p, buf, 0) && buf[0] != byte(p) {
						panic(fmt.Sprintf("stale page %d: %d", p, buf[0]))
					}
				case 2:
					c.WriteAt(p, []byte{byte(p)}, 0)
				case 3:
					c.Invalidate(p)
				}
			}
		}(g)
	}
	wg.Wait()
	c.DrainHits(func(uint64, uint64) {})
	c.Each(func(page uint64, data []byte) {
		if data[0] != byte(page) {
			t.Errorf("page %d holds %d", page, data[0])
		}
	})
}
