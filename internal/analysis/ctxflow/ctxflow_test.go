package ctxflow_test

import (
	"testing"

	"github.com/lmp-project/lmp/internal/analysis/analysistest"
	"github.com/lmp-project/lmp/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "internal/ctxflow", "clientapp")
}
