// Package pendinglock exercises the pending-table rule: the rpc tag
// table's lock is the transport's innermost lock, so holding it across a
// blocking channel send or any call that can reach back into an rpc
// package is reported — including one helper call deep, where the
// syntactic pass cannot see. The legal shape (take the entry under the
// lock, complete it after release) stays silent.
package pendinglock

import (
	"sync"

	"rpc"
)

type future struct {
	done chan struct{}
}

// pendingTable is the classified type: a named struct embedding
// sync.Mutex whose name contains "pending".
type pendingTable struct {
	sync.Mutex
	m map[uint64]*future
}

type client struct {
	pt   pendingTable
	c    *rpc.Client
	wake chan struct{}
}

// completeLocked resolves a future while still holding the table lock —
// the completion channel send can park with the transport's innermost
// lock held.
func (c *client) completeLocked(id uint64) {
	c.pt.Lock()
	defer c.pt.Unlock()
	f := c.pt.m[id]
	delete(c.pt.m, id)
	f.done <- struct{}{} // want "pending-table lock held across a blocking channel operation"
}

// resendLocked reaches the wire two calls below the pending lock: only
// the whole-program pass sees it.
func (c *client) resendLocked(id uint64) {
	c.pt.Lock()
	defer c.pt.Unlock()
	c.requeue(id) // want "pending-table lock held across a call that transitively reaches package rpc: .*requeue.*send.*rpc"
}

func (c *client) requeue(id uint64) { c.send() }

func (c *client) send() { c.c.Call(0, nil) }

// takeThenComplete is the legal shape: withdraw the entry under the
// lock, release, then complete outside. No diagnostic.
func (c *client) takeThenComplete(id uint64) {
	c.pt.Lock()
	f := c.pt.m[id]
	delete(c.pt.m, id)
	c.pt.Unlock()
	if f != nil {
		f.done <- struct{}{}
	}
}

// doorbell is also legal: a non-blocking notify happens after release.
func (c *client) doorbell(id uint64) {
	c.pt.Lock()
	c.pt.m[id] = &future{done: make(chan struct{}, 1)}
	c.pt.Unlock()
	c.wake <- struct{}{}
}
