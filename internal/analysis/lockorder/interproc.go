// Whole-program lockorder: the syntactic rules in this package catch
// in-function violations; the ProgramAnalyzer below adds the two checks
// a helper one call deep used to defeat.
//
//  1. Transitive RPC under a data lock: no call made while a stripe or
//     cache-shard lock is held may *transitively* reach an rpc package.
//     The wire can block indefinitely and its completion path can
//     re-enter the cache; PR 2's syntactic rule only saw direct calls.
//     1b. The rpc pending-table lock (any named struct embedding a mutex
//     with "pending" in its name) is the transport's innermost lock: a
//     blocking channel operation or an rpc-reaching call under it —
//     directly or through helpers — is reported. The legal shape is
//     take-then-complete: withdraw the table entry under the lock and
//     resolve it after release.
//     1c. Slice-size work under a hot lock: the recovery/migration engine's
//     contract is that bulk bytes move outside the structural and stripe
//     locks, which are only reacquired for short commit windows. A
//     slice-size staging allocation (make sized by SliceSize) or a
//     Reed-Solomon encode/reconstruct reached — directly or through
//     helpers — while either lock is held is reported; the commit-window
//     lock (a named struct embedding a mutex with "commit" in its name)
//     is where that work belongs.
//  2. Lock-graph cycles: every function contributes edges "holding
//     class H, acquires class A" (directly or through any callee) to a
//     global graph over the lock hierarchy — commit-window, structural,
//     stripe, cache-shard, directory. Any cycle is a potential deadlock
//     and is reported with the witness path for each edge. Self-edges
//     are not cycles: multi-stripe acquisition is legal because the
//     vectored path sorts stripe indices first (the syntactic rule
//     enforces the sort).
//
// Held regions are lexical, like the syntactic rules: a lock is held
// from its acquire to the first matching inline release, or to the end
// of the body when released by defer. Deferred, go-spawned, and
// closure-captured calls are not attributed to the held region — a
// closure built under a lock may run after release (the flush path does
// exactly that), so charging it would make the clean tree unachievable;
// the known cost is that a closure invoked synchronously under the lock
// escapes these two checks (the dynamic chaos harness still covers it).
package lockorder

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"github.com/lmp-project/lmp/internal/analysis"
	"github.com/lmp-project/lmp/internal/analysis/callgraph"
	"github.com/lmp-project/lmp/internal/analysis/summary"
)

// ProgramAnalyzer is the whole-program half of the lockorder check. It
// shares the "lockorder" name with the syntactic analyzer on purpose:
// one //lint:ignore lockorder directive covers both aspects of the same
// discipline.
var ProgramAnalyzer = &summary.ProgramAnalyzer{
	Name: "lockorder",
	Doc: "whole-program lock discipline: no call under a stripe or cache-shard " +
		"lock may transitively reach an rpc package, nothing blocking or " +
		"rpc-reaching may run under a pending-table lock, no slice-size copy " +
		"or Reed-Solomon coding may run under the structural or a stripe lock, " +
		"and the global lock graph over " +
		"commit/structural/stripe/shard/directory/pending must be acyclic",
	Run: runProgram,
}

// lockEdge is one "holding from, acquires to" observation.
type lockEdge struct {
	from, to summary.LockClass
	fn       string // function contributing the edge
	pos      token.Pos
	chain    []analysis.RelatedPos
}

func runProgram(p *summary.Program, report func(analysis.Diagnostic)) error {
	ids := make([]string, 0, len(p.Fns))
	for id := range p.Fns {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	edges := map[[2]summary.LockClass]lockEdge{}
	for _, id := range ids {
		scanHeldRegions(p, id, report, edges)
	}
	reportCycles(p, edges, report)
	return nil
}

// acqMask covers the classified acquisition facts.
const acqMask = summary.AcqStripe | summary.AcqShard | summary.AcqDirectory |
	summary.AcqStructural | summary.AcqPending | summary.AcqCommit

var lockClasses = []summary.LockClass{
	summary.LockCommit, summary.LockStructural, summary.LockStripe,
	summary.LockShard, summary.LockDirectory, summary.LockPending,
}

// pendingForbidden names the facts barred under a pending-table lock:
// the table is the transport's innermost lock, so a send (a completion
// channel lives on the other side) or any call that can re-enter the
// rpc layer while holding it is a deadlock seed.
const pendingForbidden = summary.BlocksChan | summary.CallsRPC

// scanHeldRegions walks one function's sites in source order with the
// lexically-held lock set, reporting transitive RPC reachability and
// collecting lock-graph edges.
func scanHeldRegions(p *summary.Program, id string, report func(analysis.Diagnostic), edges map[[2]summary.LockClass]lockEdge) {
	fi := p.Fns[id]
	held := map[summary.LockClass]int{}
	li := 0
	for _, s := range fi.Sites {
		// Apply lock operations strictly before this site; a deferred
		// release keeps the lock held to the end of the body.
		for li < len(fi.Locks) && fi.Locks[li].Pos < s.Pos {
			op := fi.Locks[li]
			li++
			if op.Deferred {
				continue
			}
			if op.Acquire {
				held[op.Class]++
			} else if held[op.Class] > 0 {
				held[op.Class]--
			}
		}
		anyHeld := false
		for _, c := range lockClasses {
			if held[c] > 0 {
				anyHeld = true
			}
		}
		if !anyHeld {
			continue
		}
		if s.Call != nil && (s.Call.Deferred || s.Call.Go || s.Call.InLit) {
			continue // runs outside the lexical held region (see package comment)
		}
		facts := p.SiteFacts(s)
		// Rule 1: nothing under a stripe or shard lock reaches rpc.
		if facts&summary.CallsRPC != 0 && (held[summary.LockStripe] > 0 || held[summary.LockShard] > 0) {
			holder := summary.LockStripe
			if held[summary.LockStripe] == 0 {
				holder = summary.LockShard
			}
			chain := p.SiteWitness(s, summary.CallsRPC, nil)
			report(analysis.Diagnostic{
				Pos: s.Pos,
				Message: fmt.Sprintf("%s lock held across a call that transitively reaches package rpc: %s",
					holder, p.WitnessString(chain)),
				Related: chain,
			})
		}
		// Rule 1b: the pending-table lock is innermost — nothing held
		// under it may block on a channel or reach back into rpc.
		if held[summary.LockPending] > 0 && facts&pendingForbidden != 0 {
			bad := summary.CallsRPC
			what := "a call that transitively reaches package rpc"
			if facts&summary.BlocksChan != 0 {
				bad = summary.BlocksChan
				what = "a blocking channel operation"
			}
			chain := p.SiteWitness(s, bad, nil)
			report(analysis.Diagnostic{
				Pos: s.Pos,
				Message: fmt.Sprintf("pending-table lock held across %s: %s",
					what, p.WitnessString(chain)),
				Related: chain,
			})
		}
		// Rule 1c: slice-size staging allocations and Reed-Solomon coding
		// stay out of the structural and stripe hold windows — bulk bytes
		// move under the commit-window lock alone, and the inner locks are
		// reacquired only to validate and swap pointers.
		if facts&summary.HeavyOp != 0 && (held[summary.LockStructural] > 0 || held[summary.LockStripe] > 0) {
			holder := summary.LockStructural
			if held[summary.LockStructural] == 0 {
				holder = summary.LockStripe
			}
			chain := p.SiteWitness(s, summary.HeavyOp, nil)
			report(analysis.Diagnostic{
				Pos: s.Pos,
				Message: fmt.Sprintf("%s lock held across a slice-size copy or reconstruction: %s",
					holder, p.WitnessString(chain)),
				Related: chain,
			})
		}
		// Rule 2: collect "holding H, acquires A" edges.
		if facts&acqMask == 0 {
			continue
		}
		for _, to := range lockClasses {
			if facts&to.AcqFact() == 0 {
				continue
			}
			for _, from := range lockClasses {
				if from == to || held[from] == 0 {
					continue
				}
				key := [2]summary.LockClass{from, to}
				if _, seen := edges[key]; seen {
					continue
				}
				edges[key] = lockEdge{
					from: from, to: to, fn: id, pos: s.Pos,
					chain: p.SiteWitness(s, to.AcqFact(), nil),
				}
			}
		}
	}
}

// reportCycles finds every elementary cycle in the 4-node class graph
// and reports each once, rotated to start at the smallest class so the
// report position is deterministic.
func reportCycles(p *summary.Program, edges map[[2]summary.LockClass]lockEdge, report func(analysis.Diagnostic)) {
	adj := map[summary.LockClass][]summary.LockClass{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for _, next := range adj {
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	}
	seen := map[string]bool{}
	var path []summary.LockClass
	onPath := map[summary.LockClass]bool{}
	var dfs func(at summary.LockClass)
	dfs = func(at summary.LockClass) {
		path = append(path, at)
		onPath[at] = true
		for _, to := range adj[at] {
			if !onPath[to] {
				dfs(to)
				continue
			}
			// Found a cycle: the path suffix from `to` to `at`, closed.
			start := 0
			for i, c := range path {
				if c == to {
					start = i
					break
				}
			}
			cycle := append([]summary.LockClass{}, path[start:]...)
			reportCycle(p, cycle, edges, seen, report)
		}
		path = path[:len(path)-1]
		onPath[at] = false
	}
	for _, c := range lockClasses {
		dfs(c)
	}
}

func reportCycle(p *summary.Program, cycle []summary.LockClass, edges map[[2]summary.LockClass]lockEdge, seen map[string]bool, report func(analysis.Diagnostic)) {
	// Canonicalize: rotate so the smallest class leads.
	min := 0
	for i, c := range cycle {
		if c < cycle[min] {
			min = i
		}
	}
	cycle = append(cycle[min:], cycle[:min]...)
	names := make([]string, 0, len(cycle)+1)
	for _, c := range cycle {
		names = append(names, c.String())
	}
	names = append(names, cycle[0].String())
	key := strings.Join(names, ">")
	if seen[key] {
		return
	}
	seen[key] = true

	var related []analysis.RelatedPos
	var parts []string
	for i, from := range cycle {
		to := cycle[(i+1)%len(cycle)]
		e := edges[[2]summary.LockClass{from, to}]
		related = append(related, analysis.RelatedPos{
			Pos: e.pos,
			Message: fmt.Sprintf("%s acquires the %s lock while holding the %s lock",
				callgraph.ShortName(e.fn), to, from),
		})
		// The edge's own call chain down to the acquire grounds the claim.
		related = append(related, e.chain...)
		pos := p.Fset.Position(e.pos)
		parts = append(parts, fmt.Sprintf("%s takes %s under %s (%s:%d)",
			callgraph.ShortName(e.fn), to, from, shortBase(pos.Filename), pos.Line))
	}
	first := edges[[2]summary.LockClass{cycle[0], cycle[1%len(cycle)]}]
	report(analysis.Diagnostic{
		Pos: first.pos,
		Message: fmt.Sprintf("lock-order cycle %s: %s",
			strings.Join(names, " -> "), strings.Join(parts, "; ")),
		Related: related,
	})
}

func shortBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
